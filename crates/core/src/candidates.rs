//! Candidate clustering enumeration — the paper's
//! `Clusterings(σ, R)` routine.
//!
//! For a constraint `σ = (X[t], λl, λr)` the candidate *clusters* are
//! subsets of the target tuples `I_σ` (tuples matching `t`; a cluster
//! containing any non-target tuple would suppress the target value and
//! contribute nothing). A candidate *clustering* is a set of disjoint
//! clusters, each of size ≥ `k`, whose total size lies in
//! `[max(λl, k), λr]` — `Suppress` of such a clustering retains
//! exactly `total` occurrences of the target.
//!
//! The space of clusterings is combinatorial; the paper states that
//! the number *considered* per constraint is polynomial. We enumerate
//! a capped, quality-ordered subset:
//!
//! * target tuples are sorted by QI similarity so clusters of adjacent
//!   tuples need little suppression;
//! * small target sets get exhaustive subset enumeration (this makes
//!   the running example behave exactly as in the paper's Figure 2);
//! * large target sets get evenly-spread *windows* over the sorted
//!   order, for a spread of total sizes in the feasible range;
//! * each selected tuple subset yields a clustering chunked into
//!   groups of `k` (fine, low-suppression) and, when small, the
//!   single-cluster variant the paper's figures show.

use diva_constraints::BoundConstraint;
use diva_relation::{AttrRole, Relation, RowId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One candidate clustering: disjoint clusters over `I_σ`, each of
/// size ≥ k. Rows within each cluster are sorted ascending (the
/// canonical form used for shared-cluster detection).
pub type Clustering = Vec<Vec<RowId>>;

/// Target sets up to this size are enumerated exhaustively.
const SMALL_TARGET: usize = 16;

/// Number of distinct clustering sizes sampled for large target sets.
const SIZE_SAMPLES: usize = 8;

/// The capped candidate list for one constraint.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Candidates in preference order (cheapest first).
    pub candidates: Vec<Clustering>,
    /// Whether the empty clustering is the (single) candidate because
    /// the constraint has no lower-bound obligation.
    pub lower_is_free: bool,
    /// The target tuples `I_σ` in QI-similarity order — the base
    /// sequence candidates were cut from, used by the search to
    /// *repair* a candidate whose rows were taken by other
    /// constraints (see [`CandidateSet::repair`]).
    pub sorted_targets: Vec<RowId>,
    /// ℓ-diversity requirement on clusters (1 = none) and, when
    /// active, each row's sensitive-value signature, indexed densely
    /// by row id (empty when the filter is off).
    min_sensitive: usize,
    sens_sig: Vec<u64>,
}

impl CandidateSet {
    /// Enumerates candidates for `c` over `rel`.
    ///
    /// `shuffle_seed` randomizes candidate order (the Basic strategy);
    /// `None` keeps the quality order (MinChoice / MaxFanOut).
    pub fn enumerate(
        rel: &Relation,
        c: &BoundConstraint,
        k: usize,
        max_candidates: usize,
        shuffle_seed: Option<u64>,
    ) -> Self {
        Self::enumerate_with_privacy(rel, c, k, max_candidates, shuffle_seed, 1)
    }

    /// [`CandidateSet::enumerate`] with the ℓ-diversity extension:
    /// candidate clusters must each contain at least `min_sensitive`
    /// distinct sensitive values (the paper's §5 re-definition of the
    /// clustering criteria; 1 disables the filter).
    pub fn enumerate_with_privacy(
        rel: &Relation,
        c: &BoundConstraint,
        k: usize,
        max_candidates: usize,
        shuffle_seed: Option<u64>,
        min_sensitive: usize,
    ) -> Self {
        Self::enumerate_interruptible(
            rel,
            c,
            k,
            max_candidates,
            shuffle_seed,
            min_sensitive,
            &|| false,
        )
    }

    /// [`CandidateSet::enumerate_with_privacy`] with an early-stop
    /// probe. `stop` is polled between enumeration steps — window
    /// enumeration is the longest uninterruptible stretch of the whole
    /// pipeline on large inputs, so a wall-clock budget must be able
    /// to reach inside it. Once `stop` returns `true` the candidate
    /// list is abandoned (emptied): the caller is committed to
    /// degrading or cancelling, so no further work is spent polishing
    /// candidates that will never be searched. A probe that never
    /// fires leaves the result byte-identical to the plain
    /// enumeration.
    pub fn enumerate_interruptible(
        rel: &Relation,
        c: &BoundConstraint,
        k: usize,
        max_candidates: usize,
        shuffle_seed: Option<u64>,
        min_sensitive: usize,
        stop: &(dyn Fn() -> bool + Sync),
    ) -> Self {
        // MinChoice/MaxFanOut cut clusters from the QI-similarity
        // order (cheap suppression); Basic — the paper's naive variant
        // — clusters random target subsets instead.
        let mut sorted = similarity_sorted(rel, &c.target_rows);
        let mut rng = shuffle_seed.map(StdRng::seed_from_u64);
        if let Some(rng) = rng.as_mut() {
            sorted.shuffle(rng);
        }
        if c.lower == 0 {
            // Only an upper bound: the minimal clustering is empty —
            // nothing must be *retained*; overflow is handled by the
            // consistency checks and Integrate.
            return Self {
                candidates: vec![Vec::new()],
                lower_is_free: true,
                sorted_targets: sorted,
                min_sensitive,
                sens_sig: Vec::new(),
            };
        }
        let sens_sig = if min_sensitive > 1 { sensitive_signatures(rel) } else { Vec::new() };
        let m_min = c.lower.max(k);
        let m_max = c.upper.min(sorted.len());
        if m_min > m_max {
            return Self {
                candidates: Vec::new(),
                lower_is_free: false,
                sorted_targets: sorted,
                min_sensitive,
                sens_sig,
            };
        }

        let mut out: Vec<Clustering> = Vec::new();
        if sorted.len() <= SMALL_TARGET {
            enumerate_small(&sorted, m_min, m_max, k, max_candidates, stop, &mut out);
        } else {
            enumerate_windows(&sorted, m_min, m_max, k, max_candidates, stop, &mut out);
        }
        // A fired probe abandons the list rather than spending more
        // time canonicalizing candidates that will never be searched:
        // the search's entry poll turns the same `stop` condition into
        // a degradation or cancellation before candidates matter. The
        // canonicalization pass re-polls periodically so a deadline
        // arriving mid-pass is also honoured promptly.
        let mut i = 0;
        while i < out.len() {
            if i & 0xFF == 0 && stop() {
                break;
            }
            let clustering = &mut out[i];
            for cluster in clustering.iter_mut() {
                cluster.sort_unstable();
            }
            clustering.sort();
            i += 1;
        }
        if stop() {
            out.clear();
        }
        out.dedup();
        if min_sensitive > 1 {
            out.retain(|cl| {
                cl.iter().all(|cluster| distinct_sigs(&sens_sig, cluster) >= min_sensitive)
            });
        }
        if let Some(rng) = rng.as_mut() {
            out.shuffle(rng);
        }
        Self {
            candidates: out,
            lower_is_free: false,
            sorted_targets: sorted,
            min_sensitive,
            sens_sig,
        }
    }

    /// Rebuilds a candidate from rows that are still free.
    ///
    /// The capped enumeration cuts candidates from fixed positions of
    /// the similarity order, so a constraint whose target rows were
    /// claimed by already-coloured neighbours may find every literal
    /// candidate blocked even though plenty of target tuples remain.
    /// `repair` keeps the candidate's *shape* — its total size and its
    /// position in the similarity order — but re-materializes it from
    /// rows for which `is_free` returns true, scanning forward from
    /// the candidate's original offset and wrapping around. Returns
    /// `None` when fewer free target tuples remain than the candidate
    /// needs.
    pub fn repair<F: Fn(RowId) -> bool>(
        &self,
        candidate: &Clustering,
        k: usize,
        is_free: F,
    ) -> Option<Clustering> {
        let m: usize = candidate.iter().map(Vec::len).sum();
        if m == 0 {
            return None;
        }
        // Anchor at the original offset of the candidate's first row.
        let first = candidate.iter().filter_map(|cl| cl.first()).min().copied()?;
        let anchor = self.sorted_targets.iter().position(|&r| r == first).unwrap_or(0);
        let n = self.sorted_targets.len();
        let mut picked: Vec<RowId> = Vec::with_capacity(m);
        for i in 0..n {
            let row = self.sorted_targets[(anchor + i) % n];
            if is_free(row) {
                picked.push(row);
                if picked.len() == m {
                    break;
                }
            }
        }
        if picked.len() < m {
            return None;
        }
        let mut repaired = chunked(&picked, k);
        if self.min_sensitive > 1
            && repaired
                .iter()
                .any(|cluster| distinct_sigs(&self.sens_sig, cluster) < self.min_sensitive)
        {
            return None; // conservative: repairs never weaken privacy
        }
        for cluster in &mut repaired {
            cluster.sort_unstable();
        }
        repaired.sort();
        if &repaired == candidate {
            return None; // nothing changed; no point retrying
        }
        Some(repaired)
    }

    /// Re-indexes this candidate set into a component-local row-id
    /// space. `rows` holds the component's global row ids ascending
    /// (local id = position) and `to_local[g]` the inverse map
    /// (`u32::MAX` for rows outside the component; those are dropped,
    /// which never fires for a closed component since every candidate
    /// row is one of the constraint's target rows). Candidate order,
    /// the similarity/shuffle order of `sorted_targets`, and the
    /// ℓ-diversity signatures all survive the remap unchanged, so a
    /// compact per-component solve walks candidates exactly like the
    /// monolithic one.
    pub(crate) fn remap_rows(&self, rows: &[RowId], to_local: &[u32]) -> Self {
        let map =
            |r: RowId| to_local.get(r).copied().filter(|&l| l != u32::MAX).map(|l| l as usize);
        let candidates = self
            .candidates
            .iter()
            .map(|clustering| {
                clustering
                    .iter()
                    .map(|cluster| cluster.iter().filter_map(|&r| map(r)).collect())
                    .collect()
            })
            .collect();
        let sorted_targets = self.sorted_targets.iter().filter_map(|&r| map(r)).collect();
        let sens_sig = if self.sens_sig.is_empty() {
            Vec::new()
        } else {
            // Dense over local ids: local row l keeps global row
            // rows[l]'s signature, so distinctness is untouched.
            rows.iter().map(|&g| self.sens_sig.get(g).copied().unwrap_or(g as u64)).collect()
        };
        Self {
            candidates,
            lower_is_free: self.lower_is_free,
            sorted_targets,
            min_sensitive: self.min_sensitive,
            sens_sig,
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// The minimum total size any satisfying clustering must have:
    /// 0 when the constraint has no lower-bound obligation, else
    /// `max(λl, k)` as materialized by the smallest candidate. Used by
    /// the search's forward check.
    pub fn min_total(&self) -> usize {
        if self.lower_is_free {
            return 0;
        }
        self.candidates.iter().map(|cl| cl.iter().map(Vec::len).sum()).min().unwrap_or(usize::MAX)
    }

    /// Whether there are no candidates (the constraint is
    /// unsatisfiable for this relation and `k`).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Publishes this candidate set's generation stats to `obs`: the
    /// total generated (`candidates.generated`), the per-constraint
    /// set-size and target-pool histograms, and how many constraints
    /// carried no lower-bound obligation (`candidates.lower_free`).
    /// Called once per constraint after enumeration.
    pub fn record_to(&self, obs: &diva_obs::Obs) {
        if !obs.is_enabled() {
            return;
        }
        obs.counter("candidates.generated").add(self.candidates.len() as u64);
        if self.lower_is_free {
            obs.counter("candidates.lower_free").incr();
        }
        obs.histogram("candidates.set_size").record_len(self.candidates.len());
        obs.histogram("candidates.target_rows").record_len(self.sorted_targets.len());
    }
}

/// Sorts target rows so that tuples with similar QI values are
/// adjacent (lexicographic over the QI code vector, ties by row id for
/// determinism).
fn similarity_sorted(rel: &Relation, rows: &[RowId]) -> Vec<RowId> {
    let qi_cols = rel.schema().qi_cols();
    let mut sorted = rows.to_vec();
    sorted.sort_by(|&a, &b| {
        for &c in qi_cols {
            match rel.code(a, c).cmp(&rel.code(b, c)) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        a.cmp(&b)
    });
    sorted
}

/// Splits `rows` (already similarity-ordered) into clusters of size ≥
/// `k`: `⌊m/k⌋ − 1` chunks of exactly `k` and a final chunk of
/// `k..2k` rows.
fn chunked(rows: &[RowId], k: usize) -> Clustering {
    let m = rows.len();
    debug_assert!(m >= k);
    let q = m / k;
    let mut clusters = Vec::with_capacity(q);
    let mut i = 0;
    for chunk in 0..q {
        let take = if chunk + 1 == q { m - i } else { k };
        clusters.push(rows[i..i + take].to_vec());
        i += take;
    }
    clusters
}

/// Exhaustive subset enumeration for small target sets: for each
/// feasible total size (ascending), walk the size-`m` combinations of
/// the sorted target set in lexicographic order, emitting the chunked
/// and (for small subsets) single-cluster variants.
fn enumerate_small(
    sorted: &[RowId],
    m_min: usize,
    m_max: usize,
    k: usize,
    cap: usize,
    stop: &(dyn Fn() -> bool + Sync),
    out: &mut Vec<Clustering>,
) {
    for m in m_min..=m_max {
        if stop() {
            return;
        }
        let mut idx: Vec<usize> = (0..m).collect();
        loop {
            let subset: Vec<RowId> = idx.iter().map(|&i| sorted[i]).collect();
            push_variants(&subset, k, out);
            if out.len() >= cap {
                out.truncate(cap);
                return;
            }
            // Advance the combination (lexicographic successor).
            let n = sorted.len();
            let mut pos = m;
            while pos > 0 {
                pos -= 1;
                if idx[pos] != pos + n - m {
                    idx[pos] += 1;
                    for j in pos + 1..m {
                        idx[j] = idx[j - 1] + 1;
                    }
                    break;
                }
                if pos == 0 {
                    pos = usize::MAX; // signal exhaustion
                    break;
                }
            }
            if pos == usize::MAX {
                break;
            }
        }
    }
}

/// Window enumeration for large target sets: sample up to
/// [`SIZE_SAMPLES`] total sizes across the feasible range (smallest
/// first — consuming fewer tuples conflicts less), and for each size a
/// spread of window offsets over the similarity order.
fn enumerate_windows(
    sorted: &[RowId],
    m_min: usize,
    m_max: usize,
    k: usize,
    cap: usize,
    stop: &(dyn Fn() -> bool + Sync),
    out: &mut Vec<Clustering>,
) {
    let sizes = spread(m_min, m_max, SIZE_SAMPLES);
    let per_size = (cap / sizes.len().max(1)).max(1);
    for &m in &sizes {
        let last_start = sorted.len() - m;
        let starts = spread(0, last_start, per_size);
        for &s in &starts {
            // Each window clones up to the whole target set; polling
            // the probe per window keeps the stop latency bounded by
            // one window's materialization.
            if stop() {
                return;
            }
            let window = &sorted[s..s + m];
            push_variants(window, k, out);
            if out.len() >= cap {
                out.truncate(cap);
                return;
            }
        }
    }
}

/// Emits the chunked variant of `subset` and, when the subset is small
/// enough that one QI-group is a plausible choice (the paper's
/// single-cluster clusterings in Figure 2), the single-cluster
/// variant.
fn push_variants(subset: &[RowId], k: usize, out: &mut Vec<Clustering>) {
    let chunksed = chunked(subset, k);
    if chunksed.len() > 1 && subset.len() <= 3 * k {
        out.push(vec![subset.to_vec()]);
    }
    out.push(chunksed);
}

/// Sensitive-value signatures of every row (FNV-style fold of the
/// sensitive codes), indexed densely by row id. Signatures are only
/// compared for distinctness; a hash collision under-counts and can
/// only make the ℓ-diversity filter *more* conservative.
fn sensitive_signatures(rel: &Relation) -> Vec<u64> {
    let sens_cols: Vec<usize> = (0..rel.schema().arity())
        .filter(|&c| rel.schema().attribute(c).role() == AttrRole::Sensitive)
        .collect();
    (0..rel.n_rows())
        .map(|r| {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            if sens_cols.is_empty() {
                h = r as u64; // vacuous ℓ-diversity: every row distinct
            }
            for &c in &sens_cols {
                h ^= u64::from(rel.code(r, c)).wrapping_add(0x9e37_79b9);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h
        })
        .collect()
}

/// Number of distinct signatures among `rows`. Clusters are small
/// (a few multiples of `k`), so sort-and-dedup of a scratch vector
/// beats building a hash set.
fn distinct_sigs(sigs: &[u64], rows: &[RowId]) -> usize {
    let mut seen: Vec<u64> = rows.iter().filter_map(|&r| sigs.get(r).copied()).collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Up to `n` evenly-spread values in `[lo, hi]`, always including the
/// endpoints, ascending and deduplicated.
fn spread(lo: usize, hi: usize, n: usize) -> Vec<usize> {
    debug_assert!(lo <= hi);
    let n = n.max(1);
    if hi == lo {
        return vec![lo];
    }
    let mut vals: Vec<usize> = (0..n)
        .map(|i| lo + ((hi - lo) as u128 * i as u128 / (n as u128 - 1).max(1)) as usize)
        .collect();
    vals.dedup();
    vals
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_constraints::Constraint;
    use diva_relation::fixtures::paper_table1;

    fn candidates_for(
        attr: &str,
        value: &str,
        lower: usize,
        upper: usize,
        k: usize,
    ) -> CandidateSet {
        let r = paper_table1();
        let c = Constraint::single(attr, value, lower, upper).bind(&r).unwrap();
        CandidateSet::enumerate(&r, &c, k, 64, None)
    }

    #[test]
    fn paper_sigma1_has_four_clusterings() {
        // σ1 = (ETH[Asian], 2, 5), k=2, I = {t8,t9,t10}: the paper's
        // Figure 2 lists {{t8,t9}}, {{t8,t10}}, {{t9,t10}},
        // {{t8,t9,t10}}.
        let cs = candidates_for("ETH", "Asian", 2, 5, 2);
        let mut got: Vec<Clustering> = cs.candidates.clone();
        got.sort();
        let mut want: Vec<Clustering> =
            vec![vec![vec![7, 8]], vec![vec![7, 9]], vec![vec![8, 9]], vec![vec![7, 8, 9]]];
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn paper_sigma2_has_one_clustering() {
        // σ2 = (ETH[African], 1, 3), k=2, I = {t5,t6}: only {{t5,t6}}.
        let cs = candidates_for("ETH", "African", 1, 3, 2);
        assert_eq!(cs.candidates, vec![vec![vec![4, 5]]]);
    }

    #[test]
    fn paper_sigma3_includes_multi_cluster_candidates() {
        // σ3 = (CTY[Vancouver], 2, 4), k=2, I = {t6,t7,t8,t10}: the
        // paper's Figure 2 shows pairs, triples, and the two-cluster
        // clustering {{t6,t7},{t8,t10}}-style candidates.
        let cs = candidates_for("CTY", "Vancouver", 2, 4, 2);
        assert!(cs.candidates.iter().any(|cl| cl.len() == 2), "expected a 2-cluster candidate");
        assert!(cs.candidates.iter().any(|cl| cl.len() == 1 && cl[0].len() == 2));
        // All candidates: clusters ≥ k, total within [2,4], rows ⊆ I.
        for cl in &cs.candidates {
            let total: usize = cl.iter().map(Vec::len).sum();
            assert!((2..=4).contains(&total));
            for cluster in cl {
                assert!(cluster.len() >= 2);
                for &r in cluster {
                    assert!([5, 6, 7, 9].contains(&r), "row {r} not in I_σ3");
                }
            }
        }
    }

    #[test]
    fn upper_bound_only_yields_empty_clustering() {
        let cs = candidates_for("ETH", "Asian", 0, 2, 2);
        assert!(cs.lower_is_free);
        assert_eq!(cs.candidates, vec![Vec::<Vec<usize>>::new()]);
    }

    #[test]
    fn unsatisfiable_bounds_yield_no_candidates() {
        // Want ≥ 4 Asians but only 3 exist.
        let cs = candidates_for("ETH", "Asian", 4, 10, 2);
        assert!(cs.is_empty());
        // Upper bound below k: a cluster of ≥ k would overshoot.
        let cs = candidates_for("ETH", "Asian", 2, 2, 3);
        assert!(cs.is_empty());
    }

    #[test]
    fn clusters_respect_k() {
        let cs = candidates_for("CTY", "Vancouver", 2, 4, 3);
        for cl in &cs.candidates {
            for cluster in cl {
                assert!(cluster.len() >= 3);
            }
        }
        assert!(!cs.is_empty());
    }

    #[test]
    fn cap_is_respected_and_shuffle_is_deterministic() {
        let r = paper_table1();
        let c = Constraint::single("CTY", "Vancouver", 2, 4).bind(&r).unwrap();
        let capped = CandidateSet::enumerate(&r, &c, 2, 3, None);
        assert_eq!(capped.len(), 3);
        let s1 = CandidateSet::enumerate(&r, &c, 2, 64, Some(7));
        let s2 = CandidateSet::enumerate(&r, &c, 2, 64, Some(7));
        assert_eq!(s1.candidates, s2.candidates);
        let s3 = CandidateSet::enumerate(&r, &c, 2, 64, Some(8));
        assert!(s1.candidates != s3.candidates || s1.len() <= 1);
    }

    #[test]
    fn remap_rows_preserves_structure_in_local_ids() {
        // σ3 targets global rows {5,6,7,9}; compact them to 0..4.
        let cs = candidates_for("CTY", "Vancouver", 2, 4, 2);
        let rows = vec![5usize, 6, 7, 9];
        let mut to_local = vec![u32::MAX; 10];
        for (l, &g) in rows.iter().enumerate() {
            to_local[g] = l as u32;
        }
        let compact = cs.remap_rows(&rows, &to_local);
        assert_eq!(compact.len(), cs.len());
        assert_eq!(compact.lower_is_free, cs.lower_is_free);
        assert_eq!(compact.sorted_targets.len(), cs.sorted_targets.len());
        for (orig, remapped) in cs.candidates.iter().zip(&compact.candidates) {
            assert_eq!(orig.len(), remapped.len());
            for (oc, rc) in orig.iter().zip(remapped) {
                let back: Vec<usize> = rc.iter().map(|&l| rows[l]).collect();
                assert_eq!(&back, oc, "remap must be position-preserving and invertible");
            }
        }
        // The similarity order is preserved, only re-labelled.
        let back: Vec<usize> = compact.sorted_targets.iter().map(|&l| rows[l]).collect();
        assert_eq!(back, cs.sorted_targets);
    }

    #[test]
    fn large_target_windows() {
        // A larger synthetic relation exercises the window path.
        let rel = diva_datagen::medical(2_000, 3);
        let eth = rel.schema().col_of("ETH");
        // Most frequent ethnicity value.
        let mut counts = std::collections::HashMap::new();
        for &code in rel.column(eth) {
            *counts.entry(code).or_insert(0usize) += 1;
        }
        let (&code, &freq) = counts.iter().max_by_key(|(_, &f)| f).unwrap();
        let value = rel.dict(eth).decode(code).unwrap().to_string();
        let lower = freq / 2;
        let c = Constraint::single("ETH", value, lower, freq).bind(&rel).unwrap();
        let k = 10;
        let cs = CandidateSet::enumerate(&rel, &c, k, 64, None);
        assert!(!cs.is_empty());
        assert!(cs.len() <= 64);
        for cl in &cs.candidates {
            let total: usize = cl.iter().map(Vec::len).sum();
            assert!(total >= lower && total <= freq, "total {total}");
            for cluster in cl {
                assert!(cluster.len() >= k);
                // Clusters are disjoint within a clustering.
            }
            let mut all: Vec<usize> = cl.iter().flatten().copied().collect();
            let n = all.len();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), n, "clusters overlap");
        }
        // Smallest totals come first (cheapest candidates preferred).
        let first_total: usize = cs.candidates[0].iter().map(Vec::len).sum();
        let last_total: usize = cs.candidates.last().unwrap().iter().map(Vec::len).sum();
        assert!(first_total <= last_total);
    }

    #[test]
    fn spread_endpoints() {
        assert_eq!(spread(0, 10, 3), vec![0, 5, 10]);
        assert_eq!(spread(4, 4, 5), vec![4]);
        assert_eq!(
            spread(0, 1, 5),
            vec![0, 0, 0, 1, 1]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn chunked_sizes() {
        let rows: Vec<usize> = (0..7).collect();
        let cl = chunked(&rows, 3);
        assert_eq!(cl.len(), 2);
        assert_eq!(cl[0].len(), 3);
        assert_eq!(cl[1].len(), 4);
        let cl = chunked(&rows[..3], 3);
        assert_eq!(cl, vec![vec![0, 1, 2]]);
    }
}
