//! The recursive colouring search (Algorithms 3 and 4 of the paper).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::budget::{Budget, DegradeReason};
use crate::candidates::CandidateSet;
use crate::config::{DivaConfig, Strategy};
use crate::error::DivaError;
use crate::graph::ConstraintGraph;
use crate::state::SearchState;

/// Counters reported by a colouring run.
///
/// Counters accumulate in plain fields during the search (the hot
/// loop touches no atomics) and are flushed once per solve to the
/// configured [`diva_obs::Obs`] handle as
/// `coloring.<Strategy>.<counter>` counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColoringStats {
    /// Candidate clusterings whose assignment was attempted.
    pub assignments_tried: u64,
    /// Assignments undone while backtracking.
    pub backtracks: u64,
    /// Nodes whose candidate lists were exhausted at least once.
    pub dead_ends: u64,
    /// `NextNode` invocations that selected a node (search-tree depth
    /// probes; §3.3's selection strategies).
    pub node_selections: u64,
    /// Subtrees abandoned by the forward check ("hopeless": some
    /// uncoloured node can no longer reach its minimum size).
    pub forward_check_prunes: u64,
    /// Blocked candidates the search asked [`CandidateSet::repair`] to
    /// re-materialize from free target tuples.
    pub repair_attempts: u64,
    /// Repairs that produced a materializable replacement clustering.
    pub repair_successes: u64,
}

impl ColoringStats {
    /// Flushes the counters to `obs` under the
    /// `coloring.<strategy>.<counter>` naming scheme. Counters are
    /// additive, so portfolio members sharing a handle aggregate
    /// per strategy.
    pub fn flush_to(&self, obs: &diva_obs::Obs, strategy: Strategy) {
        if !obs.is_enabled() {
            return;
        }
        let base = format!("coloring.{}", strategy.name());
        for (counter, value) in [
            ("assignments_tried", self.assignments_tried),
            ("backtracks", self.backtracks),
            ("dead_ends", self.dead_ends),
            ("node_selections", self.node_selections),
            ("forward_check_prunes", self.forward_check_prunes),
            ("repair_attempts", self.repair_attempts),
            ("repair_successes", self.repair_successes),
        ] {
            obs.counter(&format!("{base}.{counter}")).add(value);
        }
    }
}

/// The colouring search: assigns one candidate clustering (a colour)
/// to every constraint node such that the global consistency
/// conditions hold.
pub struct Coloring<'a> {
    graph: &'a ConstraintGraph,
    candidates: &'a [CandidateSet],
    labels: &'a [String],
    config: &'a DivaConfig,
    state: SearchState,
    assignment: Vec<Option<usize>>,
    /// The nodes' *global* ids — their indices in the full,
    /// pre-decomposition graph. Empty means identity (the monolithic
    /// solve); a component-local search passes its node list so the
    /// Basic strategy's hashed choices are keyed identically to the
    /// monolithic run.
    node_ids: Vec<u32>,
    stats: ColoringStats,
    /// Portfolio cancellation token: when another member wins, the
    /// search aborts with [`DivaError::Cancelled`] at the next poll
    /// (every [`CANCEL_POLL_MASK`] + 1 assignment attempts).
    cancel: Option<Arc<AtomicBool>>,
    /// Resource budget checked at the same poll points; exhaustion
    /// stops the search with the partial assignment instead of
    /// unwinding it (see [`ColoringOutcome::degraded`]).
    budget: Option<Arc<Budget>>,
}

/// Cancellation is polled when `assignments_tried & CANCEL_POLL_MASK
/// == 0` — cheap enough to leave the hot path unaffected, frequent
/// enough that losing portfolio members exit promptly.
const CANCEL_POLL_MASK: u64 = 0xFF;

/// Decorrelates the Basic strategy's candidate-order stream from its
/// node-selection stream (both are keyed by the same (seed, node)).
const CANDIDATE_ORDER_SALT: u64 = 0x5bd1_e995_0a1c_ca57;

/// Position-independent hash behind the Basic strategy's "random"
/// choices: a splitmix64-style finalizer over (seed, global node id).
/// A stream RNG would entangle each choice with every previously
/// visited node, so a component-local search could never replay the
/// monolithic search's decisions; hashing by global node id makes the
/// choice a pure function of the node, which is what makes
/// decomposed and monolithic Basic solves byte-identical.
fn basic_mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Why [`Coloring::color_remaining`] stopped before a verdict.
enum Stop {
    /// The portfolio cancellation token was observed.
    Cancel,
    /// The legacy fail-fast backtrack limit tripped (kept as an error
    /// for back-compat, unlike budget exhaustion which degrades).
    Backtracks(u64),
    /// The resource budget was exhausted: keep the partial assignment
    /// and degrade.
    Degrade(DegradeReason),
}

/// The result of a colouring run.
#[derive(Debug)]
pub struct ColoringOutcome {
    /// The diverse clustering `S_Σ`: the distinct clusters across all
    /// assigned clusterings (shared clusters appear once). When the
    /// run degraded, these are the clusters of the partial prefix
    /// assigned so far.
    pub clusters: Vec<Vec<diva_relation::RowId>>,
    /// For each node (in node order, gaps skipped when degraded), the
    /// chosen candidate index.
    pub assignment: Vec<usize>,
    /// Search counters.
    pub stats: ColoringStats,
    /// `None` for a complete colouring; `Some(reason)` when the
    /// resource budget tripped and the clusters are a partial prefix.
    pub degraded: Option<DegradeReason>,
    /// Per-cluster owning constraint ids (global, ascending), parallel
    /// to `clusters` — a constraint owns a cluster when every row is
    /// one of its targets. Populated only when the config's provenance
    /// recorder is enabled; empty (and ignored) otherwise.
    pub owners: Vec<Vec<u32>>,
}

impl<'a> Coloring<'a> {
    /// Prepares a search over `graph` with per-node `candidates`.
    /// `uppers` are the constraints' `λr` bounds; `labels` are used in
    /// error messages.
    pub fn new(
        graph: &'a ConstraintGraph,
        candidates: &'a [CandidateSet],
        uppers: Vec<usize>,
        labels: &'a [String],
        config: &'a DivaConfig,
    ) -> Self {
        assert_eq!(graph.n_nodes(), candidates.len());
        assert_eq!(graph.n_nodes(), labels.len());
        Self {
            graph,
            candidates,
            labels,
            config,
            state: SearchState::new(
                uppers,
                (0..graph.n_nodes()).map(|i| graph.target_size(i)).collect(),
                graph.n_rows(),
            ),
            assignment: vec![None; graph.n_nodes()],
            node_ids: Vec::new(),
            stats: ColoringStats::default(),
            cancel: None,
            budget: None,
        }
    }

    /// Declares the nodes' global ids (their indices in the full,
    /// pre-decomposition graph); defaults to the identity. Component
    /// solves pass their node list so the Basic strategy's hashed
    /// node/candidate choices match what the monolithic search would
    /// do for the same nodes.
    pub fn with_node_ids(mut self, ids: Vec<u32>) -> Self {
        debug_assert_eq!(ids.len(), self.graph.n_nodes());
        self.node_ids = ids;
        self
    }

    /// The global id of local node `node` (identity when no remap was
    /// declared).
    #[inline]
    fn global_id(&self, node: usize) -> u64 {
        self.node_ids.get(node).map_or(node as u64, |&g| u64::from(g))
    }

    /// Attaches a cancellation token (used by the parallel portfolio):
    /// when the token is set, the search returns
    /// [`DivaError::Cancelled`] instead of continuing.
    pub fn with_cancel(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches an armed resource budget, charged at the poll points;
    /// exhaustion ends the search with the partial assignment
    /// ([`ColoringOutcome::degraded`]).
    pub fn with_budget(mut self, budget: Arc<Budget>) -> Self {
        self.budget = Some(budget);
        self
    }

    fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.load(Ordering::Relaxed))
    }

    /// A poll point: injected slowdowns, then cancellation, then the
    /// watchdog's escalation flag, then the budget (charged one poll
    /// stride of explored nodes). Node counts are published to the
    /// live board per assignment (not here) so a mid-run scrape sees
    /// them move even on searches shorter than one poll stride.
    fn poll(&self, charge: u64) -> Result<(), Stop> {
        #[cfg(feature = "fault-inject")]
        self.config.faults.at_poll();
        if self.is_cancelled() {
            return Err(Stop::Cancel);
        }
        if self.config.board.degrade_requested() {
            return Err(Stop::Degrade(DegradeReason::Stalled {
                nodes: self.stats.assignments_tried,
            }));
        }
        if let Some(budget) = &self.budget {
            if let Some(reason) = budget.charge_nodes(charge) {
                return Err(Stop::Degrade(reason));
            }
        }
        Ok(())
    }

    /// Runs the search to completion. The search runs under a
    /// `coloring.solve` span and flushes its counters to the
    /// configured obs handle whether it succeeds or fails.
    pub fn solve(mut self) -> Result<ColoringOutcome, DivaError> {
        let mut span = self
            .config
            .obs
            .span("coloring.solve")
            .attr("strategy", self.config.strategy.name())
            .attr("nodes", self.graph.n_nodes());
        let result = self.solve_impl();
        span.set_attr("ok", result.is_ok());
        if let Ok(out) = &result {
            if let Some(reason) = &out.degraded {
                span.set_attr("degraded", reason.kind());
            }
        }
        span.end();
        self.stats.flush_to(&self.config.obs, self.config.strategy);
        result
    }

    fn solve_impl(&mut self) -> Result<ColoringOutcome, DivaError> {
        // Entry poll: a search may be dequeued after the shared
        // deadline already passed, and the injected-slowdown fault must
        // fire at least once even for searches that finish in fewer
        // assignments than the poll stride.
        if let Err(stop) = self.poll(0) {
            return self.stopped(stop);
        }
        // Fail fast on nodes with no candidates at all: the constraint
        // is unsatisfiable regardless of interactions.
        if let Some(i) = (0..self.graph.n_nodes()).find(|&i| self.candidates[i].is_empty()) {
            return Err(DivaError::NoDiverseClustering { constraint: self.labels[i].clone() });
        }
        let colored = match self.color_remaining() {
            Ok(c) => c,
            Err(stop) => return self.stopped(stop),
        };
        if !colored {
            let failed =
                (0..self.graph.n_nodes()).find(|&i| self.assignment[i].is_none()).unwrap_or(0);
            return Err(DivaError::NoDiverseClustering { constraint: self.labels[failed].clone() });
        }
        #[cfg(feature = "strict-invariants")]
        self.state.validate(self.graph).map_err(|detail| DivaError::InvariantViolated {
            phase: "DiverseClustering".into(),
            detail,
        })?;
        // Canonical order: registry order is chronology-dependent and
        // would differ between monolithic and component-merged solves.
        let clusters = self.state.live_clusters_canonical();
        let owners = self.cluster_owners(&clusters);
        Ok(ColoringOutcome {
            clusters,
            assignment: self.assignment.iter().filter_map(|a| *a).collect(),
            stats: self.stats.clone(),
            degraded: None,
            owners,
        })
    }

    /// Owning constraints per cluster (global ids, ascending), computed
    /// only when provenance is recording — the extra scan must cost
    /// nothing on the default path.
    fn cluster_owners(&self, clusters: &[Vec<diva_relation::RowId>]) -> Vec<Vec<u32>> {
        if !self.config.provenance.is_enabled() {
            return Vec::new();
        }
        clusters
            .iter()
            .map(|cluster| {
                (0..self.graph.n_nodes())
                    .filter(|&i| self.graph.cluster_contributes(i, cluster))
                    .map(|i| self.global_id(i) as u32)
                    .collect()
            })
            .collect()
    }

    /// Maps an early [`Stop`] to the outer result: cancellation and the
    /// legacy backtrack limit stay errors; budget exhaustion keeps the
    /// partial assignment and reports it as a degraded outcome.
    fn stopped(&self, stop: Stop) -> Result<ColoringOutcome, DivaError> {
        match stop {
            Stop::Cancel => Err(DivaError::Cancelled),
            Stop::Backtracks(backtracks) => Err(DivaError::SearchBudgetExhausted { backtracks }),
            Stop::Degrade(reason) => {
                #[cfg(feature = "strict-invariants")]
                self.state.validate(self.graph).map_err(|detail| DivaError::InvariantViolated {
                    phase: "DiverseClustering".into(),
                    detail,
                })?;
                let clusters = self.state.live_clusters_canonical();
                let owners = self.cluster_owners(&clusters);
                Ok(ColoringOutcome {
                    clusters,
                    assignment: self.assignment.iter().filter_map(|a| *a).collect(),
                    stats: self.stats.clone(),
                    degraded: Some(reason),
                    owners,
                })
            }
        }
    }

    /// Algorithm 4 (`Coloring`): returns `Ok(true)` if the remaining
    /// nodes can be coloured consistently. An `Err(Stop)` propagates
    /// without unwinding the partial assignment, so a degraded stop
    /// keeps the clustered-so-far prefix.
    fn color_remaining(&mut self) -> Result<bool, Stop> {
        let Some(v) = self.next_node() else {
            return Ok(true); // V contains all nodes of G
        };
        let mut order: Vec<usize> = (0..self.candidates[v].len()).collect();
        if self.config.strategy == Strategy::Basic {
            // A fixed per-node permutation (keyed by the node's global
            // id, not a shared stream) so re-expansions and
            // component-local searches walk candidates in the same
            // order as the monolithic search.
            let mut rng = StdRng::seed_from_u64(basic_mix(
                self.config.seed ^ CANDIDATE_ORDER_SALT,
                self.global_id(v),
            ));
            order.shuffle(&mut rng);
        }
        for ci in order {
            self.stats.assignments_tried += 1;
            self.config.board.add_nodes(1);
            if self.stats.assignments_tried & CANCEL_POLL_MASK == 0 {
                self.poll(CANCEL_POLL_MASK + 1)?;
            }
            let clustering = &self.candidates[v].candidates[ci];
            // IsConsistent + commit in one step. If the literal
            // candidate is blocked (typically because neighbours own
            // some of its rows), re-materialize it from free target
            // tuples at the same offset and retry once.
            let token = match self.state.try_assign(clustering, self.graph) {
                Some(t) => t,
                None => {
                    if !self.config.enable_repair {
                        continue;
                    }
                    self.stats.repair_attempts += 1;
                    self.config.board.add_repairs(1);
                    if let Some(budget) = &self.budget {
                        if let Some(reason) = budget.charge_repair() {
                            return Err(Stop::Degrade(reason));
                        }
                    }
                    #[cfg(feature = "fault-inject")]
                    if self.config.faults.repair_fails(self.stats.repair_attempts) {
                        continue;
                    }
                    let state = &self.state;
                    let Some(repaired) =
                        self.candidates[v]
                            .repair(clustering, self.config.k, |r| state.row_is_free(r))
                    else {
                        continue;
                    };
                    self.stats.repair_successes += 1;
                    self.stats.assignments_tried += 1;
                    self.config.board.add_nodes(1);
                    match self.state.try_assign(&repaired, self.graph) {
                        Some(t) => t,
                        None => continue,
                    }
                }
            };
            self.assignment[v] = Some(ci);
            // Forward check (MinChoice / MaxFanOut only; Basic stays
            // naive): every uncoloured node must still have enough
            // *free* target tuples to meet its minimum clustering
            // size — repair can materialize any window from free
            // tuples, so too few free tuples means the subtree is
            // hopeless. This is the "prune unsatisfiable clusterings
            // early" behaviour §3.3 ascribes to the strategies.
            let hopeless = self.config.strategy != Strategy::Basic
                && (0..self.graph.n_nodes()).any(|w| {
                    self.assignment[w].is_none()
                        && self.state.free_targets(w) < self.candidates[w].min_total()
                        // Too few free rows — but a node can still be
                        // satisfied by *sharing* already-registered
                        // identical clusters, so confirm with the exact
                        // per-candidate availability scan before
                        // declaring the subtree dead.
                        && !self.candidates[w]
                            .candidates
                            .iter()
                            .any(|cl| self.state.rows_available(cl))
                });
            if hopeless {
                self.stats.forward_check_prunes += 1;
            } else if self.color_remaining()? {
                return Ok(true);
            }
            // Backtrack: remove ⟨v, c⟩ from V and try another colour.
            self.assignment[v] = None;
            self.state.unassign(token, self.graph);
            self.stats.backtracks += 1;
            if let Some(limit) = self.config.backtrack_limit {
                if self.stats.backtracks > limit {
                    return Err(Stop::Backtracks(self.stats.backtracks));
                }
            }
        }
        self.stats.dead_ends += 1;
        Ok(false)
    }

    /// The `NextNode` routine (§3.3): picks the next uncoloured node
    /// according to the configured strategy, or `None` when all nodes
    /// are coloured.
    fn next_node(&mut self) -> Option<usize> {
        let uncolored: Vec<usize> =
            (0..self.graph.n_nodes()).filter(|&i| self.assignment[i].is_none()).collect();
        if uncolored.is_empty() {
            return None;
        }
        self.stats.node_selections += 1;
        Some(match self.config.strategy {
            Strategy::Basic => {
                // "Random" = smallest hash of (seed, global node id):
                // a pure function of the uncoloured set, so the choice
                // restricted to any component equals that component's
                // own choice.
                uncolored
                    .iter()
                    .min_by_key(|&&i| basic_mix(self.config.seed, self.global_id(i)))
                    .copied()
                    .unwrap_or(uncolored[0])
            }
            Strategy::MinChoice => {
                // Most restrictive first: fewest *currently consistent*
                // candidates (rows still available given coloured
                // neighbours).
                uncolored
                    .iter()
                    .min_by_key(|&&i| {
                        self.candidates[i]
                            .candidates
                            .iter()
                            .filter(|cl| self.state.rows_available(cl))
                            .count()
                    })
                    .copied()
                    .unwrap_or(uncolored[0])
            }
            Strategy::MaxFanOut => {
                // Most uncoloured neighbours first.
                uncolored
                    .iter()
                    .max_by_key(|&&i| {
                        self.graph
                            .neighbors(i)
                            .iter()
                            .filter(|&&j| self.assignment[j].is_none())
                            .count()
                    })
                    .copied()
                    .unwrap_or(uncolored[0])
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_constraints::{Constraint, ConstraintSet};
    use diva_relation::fixtures::paper_table1;

    fn solve_with(
        sigma: &[Constraint],
        k: usize,
        strategy: Strategy,
    ) -> Result<ColoringOutcome, DivaError> {
        let r = paper_table1();
        let set = ConstraintSet::bind(sigma, &r).unwrap();
        let graph = ConstraintGraph::build(&set);
        let config = DivaConfig { k, strategy, ..DivaConfig::default() };
        let shuffle = (strategy == Strategy::Basic).then_some(config.seed);
        let candidates: Vec<CandidateSet> = set
            .constraints()
            .iter()
            .map(|c| CandidateSet::enumerate(&r, c, k, config.max_candidates, shuffle))
            .collect();
        let uppers = set.constraints().iter().map(|c| c.upper).collect();
        let labels: Vec<String> = set.constraints().iter().map(|c| c.label()).collect();
        Coloring::new(&graph, &candidates, uppers, &labels, &config).solve()
    }

    fn example_sigma() -> Vec<Constraint> {
        vec![
            Constraint::single("ETH", "Asian", 2, 5),
            Constraint::single("ETH", "African", 1, 3),
            Constraint::single("CTY", "Vancouver", 2, 4),
        ]
    }

    #[test]
    fn paper_example_is_colorable_under_all_strategies() {
        for strategy in Strategy::all() {
            let out = solve_with(&example_sigma(), 2, strategy).unwrap_or_else(|e| {
                panic!("{strategy} failed: {e}");
            });
            assert_eq!(out.assignment.len(), 3);
            // Every constraint's own retained count must lie in range;
            // verify by suppressing and checking satisfaction.
            let r = paper_table1();
            let s = diva_relation::suppress::suppress_clustering(&r, &out.clusters);
            let set = ConstraintSet::bind(&example_sigma(), &s.relation).unwrap();
            assert!(set.satisfied_by(&s.relation), "{strategy}: S_Σ unsatisfying");
            assert!(diva_relation::is_k_anonymous(&s.relation, 2));
        }
    }

    #[test]
    fn example34_conflict_requires_backtracking_but_succeeds() {
        // Σ = {σ2, σ3} from Example 3.4's narrative: African and
        // Vancouver compete for t6.
        let sigma = vec![
            Constraint::single("ETH", "African", 2, 3),
            Constraint::single("CTY", "Vancouver", 2, 4),
        ];
        let out = solve_with(&sigma, 2, Strategy::MinChoice).unwrap();
        // σ2 must take {t5,t6} (the only 2 Africans), so σ3 must avoid
        // t6 (row 5).
        let rows: Vec<usize> = out.clusters.iter().flatten().copied().collect();
        assert!(rows.contains(&4) && rows.contains(&5));
    }

    #[test]
    fn upper_bound_interaction_detected() {
        // From §3.2: σ2 = (ETH[African],1,3) and σ4 = (GEN[Male],1,3).
        // Choosing {{t5,t6}} for σ2 retains 2 Males; a Male clustering
        // of 2 more would exceed σ4's upper bound 3. The colouring must
        // find a consistent combination (e.g. sharing or small totals).
        let sigma = vec![
            Constraint::single("ETH", "African", 1, 3),
            Constraint::single("GEN", "Male", 1, 3),
        ];
        let out = solve_with(&sigma, 2, Strategy::MaxFanOut).unwrap();
        let r = paper_table1();
        let s = diva_relation::suppress::suppress_clustering(&r, &out.clusters);
        let set = ConstraintSet::bind(&sigma, &s.relation).unwrap();
        assert!(set.satisfied_by(&s.relation));
    }

    #[test]
    fn unsatisfiable_reports_no_clustering() {
        // Six Asians demanded, three exist.
        let sigma = vec![Constraint::single("ETH", "Asian", 6, 10)];
        let err = solve_with(&sigma, 2, Strategy::MinChoice).unwrap_err();
        assert!(matches!(err, DivaError::NoDiverseClustering { .. }), "{err}");
    }

    #[test]
    fn conflicting_pair_unsatisfiable() {
        // σa wants ≥3 of the 4 Vancouverites kept with CTY retained;
        // σb wants ≥2 Africans retained. Africans are t5 (Winnipeg)
        // and t6 (Vancouver). An African cluster must contain both
        // t5,t6 (k=2 and only 2 Africans) which makes CTY mixed —
        // removing t6 from σa's pool leaves 3 Vancouverites, still
        // enough. Tighten σa to require all 4: now impossible.
        let sigma = vec![
            Constraint::single("CTY", "Vancouver", 4, 4),
            Constraint::single("ETH", "African", 2, 3),
        ];
        let err = solve_with(&sigma, 2, Strategy::MaxFanOut).unwrap_err();
        assert!(matches!(err, DivaError::NoDiverseClustering { .. }));
    }

    #[test]
    fn empty_sigma_colours_trivially() {
        let out = solve_with(&[], 3, Strategy::Basic).unwrap();
        assert!(out.clusters.is_empty());
        assert!(out.assignment.is_empty());
    }

    #[test]
    fn stats_are_recorded() {
        let out = solve_with(&example_sigma(), 2, Strategy::Basic).unwrap();
        assert!(out.stats.assignments_tried >= 3);
    }

    #[test]
    fn zero_deadline_degrades_with_partial_prefix() {
        let r = paper_table1();
        let set = ConstraintSet::bind(&example_sigma(), &r).unwrap();
        let graph = ConstraintGraph::build(&set);
        let config = DivaConfig { k: 2, strategy: Strategy::MinChoice, ..DivaConfig::default() };
        let candidates: Vec<CandidateSet> =
            set.constraints().iter().map(|c| CandidateSet::enumerate(&r, c, 2, 64, None)).collect();
        let uppers = set.constraints().iter().map(|c| c.upper).collect();
        let labels: Vec<String> = set.constraints().iter().map(|c| c.label()).collect();
        let budget = crate::BudgetSpec::with_deadline(std::time::Duration::ZERO).arm().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let out = Coloring::new(&graph, &candidates, uppers, &labels, &config)
            .with_budget(budget)
            .solve()
            .expect("budget exhaustion degrades, it does not error");
        // The entry poll trips before any assignment: empty prefix.
        assert!(out.clusters.is_empty());
        assert!(matches!(out.degraded, Some(DegradeReason::DeadlineExceeded { .. })));
    }

    #[test]
    fn generous_budget_is_identical_to_unbudgeted() {
        let solve_budgeted = |budget: Option<Arc<Budget>>| {
            let r = paper_table1();
            let set = ConstraintSet::bind(&example_sigma(), &r).unwrap();
            let graph = ConstraintGraph::build(&set);
            let config =
                DivaConfig { k: 2, strategy: Strategy::MinChoice, ..DivaConfig::default() };
            let candidates: Vec<CandidateSet> = set
                .constraints()
                .iter()
                .map(|c| CandidateSet::enumerate(&r, c, 2, 64, None))
                .collect();
            let uppers = set.constraints().iter().map(|c| c.upper).collect();
            let labels: Vec<String> = set.constraints().iter().map(|c| c.label()).collect();
            let mut coloring = Coloring::new(&graph, &candidates, uppers, &labels, &config);
            if let Some(b) = budget {
                coloring = coloring.with_budget(b);
            }
            coloring.solve().unwrap()
        };
        let plain = solve_budgeted(None);
        let budgeted = solve_budgeted(crate::BudgetSpec::with_node_budget(u64::MAX / 2).arm());
        assert_eq!(plain.clusters, budgeted.clusters);
        assert_eq!(plain.assignment, budgeted.assignment);
        assert!(budgeted.degraded.is_none());
    }

    #[test]
    fn budget_exhaustion_path() {
        // A tiny budget plus a conflict-heavy unsatisfiable set walks
        // into SearchBudgetExhausted (or proves unsat within budget —
        // accept either, but never success).
        let r = paper_table1();
        let sigma = vec![
            Constraint::single("CTY", "Vancouver", 4, 4),
            Constraint::single("ETH", "African", 2, 3),
            Constraint::single("ETH", "Asian", 3, 3),
            Constraint::single("GEN", "Female", 5, 5),
        ];
        let set = ConstraintSet::bind(&sigma, &r).unwrap();
        let graph = ConstraintGraph::build(&set);
        let config = DivaConfig {
            k: 2,
            strategy: Strategy::Basic,
            backtrack_limit: Some(1),
            ..DivaConfig::default()
        };
        let candidates: Vec<CandidateSet> = set
            .constraints()
            .iter()
            .map(|c| CandidateSet::enumerate(&r, c, 2, 64, Some(1)))
            .collect();
        let uppers = set.constraints().iter().map(|c| c.upper).collect();
        let labels: Vec<String> = set.constraints().iter().map(|c| c.label()).collect();
        let res = Coloring::new(&graph, &candidates, uppers, &labels, &config).solve();
        assert!(res.is_err());
    }
}
