//! Errors produced by the DIVA pipeline.

use diva_constraints::ConstraintError;

/// Why DIVA could not produce a diverse anonymized relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivaError {
    /// A constraint failed validation or binding.
    Constraint(ConstraintError),
    /// `DiverseClustering` proved that no diverse clustering exists —
    /// the paper's "relation does not exist" outcome (Algorithm 1,
    /// line 2).
    NoDiverseClustering {
        /// Label of a constraint that could not be colored (the last
        /// one the search failed on; with backtracking the true
        /// culprit may be an interaction).
        constraint: String,
    },
    /// The colouring search exhausted its backtracking budget without
    /// a proof either way. Raising
    /// [`DivaConfig::backtrack_limit`][crate::DivaConfig] may help.
    SearchBudgetExhausted {
        /// Number of backtracking steps performed.
        backtracks: u64,
    },
    /// The residual tuples (fewer than `k` of them remained outside
    /// the diverse clustering) could not be anonymized without either
    /// breaking `k`-anonymity or violating `Σ`.
    ResidualTooSmall {
        /// How many tuples remained.
        remaining: usize,
    },
    /// Integrate could not repair an upper-bound violation: the
    /// violating occurrences are pinned inside `R_Σ`.
    IntegrateFailed {
        /// Label of the violated constraint.
        constraint: String,
        /// Occurrences counted in the integrated relation.
        count: usize,
        /// The violated upper bound.
        upper: usize,
    },
    /// `k` was zero.
    InvalidK,
    /// A portfolio was requested with zero members
    /// (`seeds_per_strategy == 0`).
    EmptyPortfolio,
    /// The run was cancelled by a portfolio token before reaching a
    /// verdict (another member won the race).
    Cancelled,
    /// The requested privacy extension (ℓ-diversity) cannot be met —
    /// e.g. the residual tuples carry fewer distinct sensitive values
    /// than `ℓ`.
    PrivacyInfeasible {
        /// Human-readable reason.
        reason: String,
    },
    /// A [`DivaConfig`][crate::DivaConfig] field is out of range —
    /// e.g. `threads == Some(0)`.
    InvalidConfig {
        /// Which field, and why it was rejected.
        reason: String,
    },
    /// A portfolio worker thread panicked mid-search (fault injection,
    /// or a genuine bug caught by the portfolio's panic containment).
    /// Surfaced per member; the portfolio itself degrades instead of
    /// propagating this when every member is lost.
    WorkerPanicked {
        /// The panic message, best-effort stringified.
        detail: String,
    },
    /// A `strict-invariants` validator found a kernel structure in an
    /// inconsistent state, or an internal worker failed.
    InvariantViolated {
        /// Pipeline phase (or structure) the check ran at.
        phase: String,
        /// The violated invariant, named precisely.
        detail: String,
    },
}

impl std::fmt::Display for DivaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivaError::Constraint(e) => write!(f, "invalid constraint: {e}"),
            DivaError::NoDiverseClustering { constraint } => {
                write!(f, "no diverse k-anonymous relation exists (failed on {constraint})")
            }
            DivaError::SearchBudgetExhausted { backtracks } => {
                write!(f, "colouring search exhausted its budget after {backtracks} backtracks")
            }
            DivaError::ResidualTooSmall { remaining } => {
                write!(
                    f,
                    "{remaining} residual tuple(s) cannot form a k-anonymous group or \
                     join one without violating the constraints"
                )
            }
            DivaError::IntegrateFailed { constraint, count, upper } => {
                write!(
                    f,
                    "integration cannot repair {constraint}: {count} occurrences exceed \
                     the upper bound {upper} and are pinned inside R_Sigma"
                )
            }
            DivaError::InvalidK => write!(f, "k must be positive"),
            DivaError::EmptyPortfolio => {
                write!(f, "portfolio needs at least one seed per strategy")
            }
            DivaError::Cancelled => write!(f, "search cancelled (another portfolio member won)"),
            DivaError::PrivacyInfeasible { reason } => {
                write!(f, "privacy extension infeasible: {reason}")
            }
            DivaError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            DivaError::WorkerPanicked { detail } => {
                write!(f, "portfolio worker panicked: {detail}")
            }
            DivaError::InvariantViolated { phase, detail } => {
                write!(f, "invariant violated at {phase}: {detail}")
            }
        }
    }
}

impl std::error::Error for DivaError {}

impl From<ConstraintError> for DivaError {
    fn from(e: ConstraintError) -> Self {
        DivaError::Constraint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = DivaError::NoDiverseClustering { constraint: "ETH[Asian]".into() };
        assert!(e.to_string().contains("ETH[Asian]"));
        let e = DivaError::SearchBudgetExhausted { backtracks: 42 };
        assert!(e.to_string().contains("42"));
        let e = DivaError::IntegrateFailed { constraint: "X".into(), count: 9, upper: 5 };
        assert!(e.to_string().contains('9'));
        assert!(DivaError::InvalidK.to_string().contains("positive"));
        assert!(DivaError::ResidualTooSmall { remaining: 2 }.to_string().contains('2'));
        assert!(DivaError::EmptyPortfolio.to_string().contains("seed"));
        assert!(DivaError::Cancelled.to_string().contains("cancelled"));
        let e = DivaError::InvalidConfig { reason: "threads must be positive".into() };
        assert!(e.to_string().contains("threads"));
        let e = DivaError::WorkerPanicked { detail: "injected fault".into() };
        assert!(e.to_string().contains("injected fault"));
        let e = DivaError::InvariantViolated {
            phase: "DiverseClustering".into(),
            detail: "row 3 owned by dead cluster".into(),
        };
        assert!(e.to_string().contains("DiverseClustering"));
        assert!(e.to_string().contains("dead cluster"));
    }

    #[test]
    fn from_constraint_error() {
        let ce = ConstraintError::NoTargets;
        let e: DivaError = ce.clone().into();
        assert_eq!(e, DivaError::Constraint(ce));
    }
}
