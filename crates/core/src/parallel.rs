//! Parallel portfolio search — the paper's future-work item "a
//! distributed version of the coloring algorithm to improve
//! scalability by satisfying constraints in parallel", realized as a
//! portfolio: several complete DIVA searches with different strategies
//! and seeds race on separate threads, and the first success wins.
//!
//! A portfolio parallelizes the *search* (the exponential component)
//! rather than a single run's bookkeeping, which is the standard way
//! to parallelize backtracking with restarts; it preserves exactness
//! (a member only reports failure on a complete proof) and gives
//! speedups whenever strategies disagree about which instance is easy
//! — which Fig. 4a shows they strongly do.

use crossbeam::channel;
use crossbeam::thread;

use diva_constraints::Constraint;
use diva_relation::Relation;

use crate::config::{DivaConfig, Strategy};
use crate::diva::{Diva, DivaResult};
use crate::error::DivaError;

/// Runs a portfolio of DIVA searches in parallel and returns the first
/// successful result.
///
/// The portfolio contains one member per strategy (MinChoice,
/// MaxFanOut, Basic) times `seeds_per_strategy` seeds derived from
/// `config.seed`. If every member fails, the error of the member with
/// the strongest verdict is returned (a `NoDiverseClustering` proof
/// beats a budget exhaustion).
pub fn run_portfolio(
    rel: &Relation,
    sigma: &[Constraint],
    config: &DivaConfig,
    seeds_per_strategy: usize,
) -> Result<DivaResult, DivaError> {
    assert!(seeds_per_strategy > 0, "portfolio needs at least one seed");
    let mut members = Vec::new();
    for strategy in Strategy::all() {
        for s in 0..seeds_per_strategy as u64 {
            let mut c = config.clone();
            c.strategy = strategy;
            c.seed = config.seed.wrapping_add(s.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            members.push(c);
        }
    }

    let (tx, rx) = channel::bounded::<Result<DivaResult, DivaError>>(members.len());
    let result = thread::scope(|scope| {
        for member in &members {
            let tx = tx.clone();
            scope.spawn(move |_| {
                let out = Diva::new(member.clone()).run(rel, sigma);
                // A full channel or dropped receiver just means someone
                // else already won.
                let _ = tx.send(out);
            });
        }
        drop(tx);
        let mut best_err: Option<DivaError> = None;
        for outcome in rx.iter() {
            match outcome {
                Ok(res) => return Ok(res),
                Err(e) => {
                    let stronger = matches!(e, DivaError::NoDiverseClustering { .. })
                        || best_err.is_none();
                    if stronger {
                        best_err = Some(e);
                    }
                }
            }
        }
        Err(best_err.expect("portfolio has at least one member"))
    })
    .expect("portfolio threads do not panic");
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_constraints::ConstraintSet;
    use diva_relation::fixtures::paper_table1;
    use diva_relation::is_k_anonymous;

    fn example_sigma() -> Vec<Constraint> {
        vec![
            Constraint::single("ETH", "Asian", 2, 5),
            Constraint::single("ETH", "African", 1, 3),
            Constraint::single("CTY", "Vancouver", 2, 4),
        ]
    }

    #[test]
    fn portfolio_solves_paper_example() {
        let r = paper_table1();
        let out = run_portfolio(&r, &example_sigma(), &DivaConfig::with_k(2), 2).unwrap();
        assert!(is_k_anonymous(&out.relation, 2));
        let set = ConstraintSet::bind(&example_sigma(), &out.relation).unwrap();
        assert!(set.satisfied_by(&out.relation));
    }

    #[test]
    fn portfolio_propagates_unsatisfiability() {
        let r = paper_table1();
        let sigma = vec![Constraint::single("ETH", "Asian", 6, 10)];
        let err = run_portfolio(&r, &sigma, &DivaConfig::with_k(2), 1).unwrap_err();
        assert!(matches!(err, DivaError::NoDiverseClustering { .. }));
    }

    #[test]
    fn portfolio_on_larger_instance() {
        let r = diva_datagen::medical(1_000, 5);
        // Moderate retention demands: lower bounds around 30% of each
        // value's frequency. (Aggressive bounds make the instance
        // genuinely unsatisfiable: each constraint's own clustering
        // must meet its lower bound with clusters disjoint from other
        // constraints', so lower bounds compete for rows.)
        let sigma = diva_constraints::generators::proportional(&r, 5, 0.7, 20);
        let out = run_portfolio(&r, &sigma, &DivaConfig::with_k(5), 1).unwrap();
        assert!(is_k_anonymous(&out.relation, 5));
        let set = ConstraintSet::bind(&sigma, &out.relation).unwrap();
        assert!(set.satisfied_by(&out.relation));
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_panics() {
        let r = paper_table1();
        let _ = run_portfolio(&r, &[], &DivaConfig::with_k(2), 0);
    }
}
