//! Parallel portfolio search — the paper's future-work item "a
//! distributed version of the coloring algorithm to improve
//! scalability by satisfying constraints in parallel", realized as a
//! portfolio: several complete DIVA searches with different strategies
//! and seeds race, and the first success wins.
//!
//! A portfolio parallelizes the *search* (the exponential component)
//! rather than a single run's bookkeeping, which is the standard way
//! to parallelize backtracking with restarts; it preserves exactness
//! (a member only reports failure on a complete proof) and gives
//! speedups whenever strategies disagree about which instance is easy
//! — which Fig. 4a shows they strongly do.
//!
//! Execution model: a fixed pool of detached worker threads (capped at
//! [`std::thread::available_parallelism`], overridable via
//! [`DivaConfig::threads`]) pulls members off a shared work queue, so
//! a large portfolio never oversubscribes the machine. The first
//! success sets a shared [`AtomicBool`] cancellation token — which the
//! colouring search polls — and `run_portfolio` returns immediately
//! with the winner's wall-clock; losing members observe the token and
//! abandon their searches in the background instead of running to
//! completion.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use diva_constraints::Constraint;
use diva_relation::Relation;

use crate::budget::{Controls, DegradeReason};
use crate::config::{DivaConfig, Strategy};
use crate::diva::{Diva, DivaResult};
use crate::error::DivaError;

/// Runs a portfolio of DIVA searches in parallel and returns the first
/// successful result.
///
/// The portfolio contains one member per strategy (MinChoice,
/// MaxFanOut, Basic) times `seeds_per_strategy` seeds derived from
/// `config.seed`. Returns [`DivaError::EmptyPortfolio`] when
/// `seeds_per_strategy` is zero. If every member fails, the error of
/// the member with the strongest verdict is returned (a
/// `NoDiverseClustering` proof beats a budget exhaustion).
///
/// A configured [`DivaConfig::budget`] is armed **once** and shared by
/// every member, so the deadline and node/repair caps are global to
/// the portfolio — a member dequeued late does not get a fresh clock.
/// The first member to report (exact winner *or* budget-degraded
/// fallback) decides the portfolio's outcome and cancels the rest.
/// Worker panics are contained: a panicking member is recorded as
/// [`DivaError::WorkerPanicked`], and if *every* member is lost to
/// panics (with no unsatisfiability proof), the portfolio returns the
/// fully-suppressed degraded fallback instead of an error.
pub fn run_portfolio(
    rel: &Relation,
    sigma: &[Constraint],
    config: &DivaConfig,
    seeds_per_strategy: usize,
) -> Result<DivaResult, DivaError> {
    run_portfolio_with(rel, sigma, config, seeds_per_strategy, |member, rel, sigma, controls| {
        Diva::new(member.clone()).run_controlled(rel, sigma, controls)
    })
}

/// [`run_portfolio`] with an injectable member runner — the test seam
/// that lets the early-return, panic-containment, and budget behaviour
/// be exercised with synthetic members. Production code uses
/// [`run_portfolio`].
pub fn run_portfolio_with<F>(
    rel: &Relation,
    sigma: &[Constraint],
    config: &DivaConfig,
    seeds_per_strategy: usize,
    member_runner: F,
) -> Result<DivaResult, DivaError>
where
    F: Fn(&DivaConfig, &Relation, &[Constraint], &Controls) -> Result<DivaResult, DivaError>
        + Send
        + Sync
        + 'static,
{
    config.validate()?;
    if seeds_per_strategy == 0 {
        return Err(DivaError::EmptyPortfolio);
    }
    let mut members = Vec::new();
    for strategy in Strategy::all() {
        for s in 0..seeds_per_strategy as u64 {
            let mut c = config.clone();
            c.strategy = strategy;
            c.seed = config.seed.wrapping_add(s.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            // `clone` shares the recorder Arc; concurrent members would
            // interleave records, so each gets a private recorder and
            // the winner's log is adopted into the caller's handle.
            if config.provenance.is_enabled() {
                c.provenance = diva_obs::Provenance::enabled();
            }
            members.push(c);
        }
    }

    let obs = config.obs.clone();
    let mut root_span = obs
        .span("portfolio.run")
        .attr("members", members.len())
        .attr("seeds_per_strategy", seeds_per_strategy);
    let root_id = root_span.id();

    // Workers are detached: they borrow nothing from this stack frame,
    // so the function can return the moment a winner reports, while
    // losers notice the cancellation token and wind down on their own.
    let members = Arc::new(members);
    let rel = Arc::new(rel.clone());
    let sigma = Arc::new(sigma.to_vec());
    let runner = Arc::new(member_runner);
    // One budget for the whole portfolio: armed here (clock starts
    // now) and shared through the controls every member receives.
    let controls = Controls::new(config.budget.arm());
    let next = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = mpsc::channel::<(usize, Result<DivaResult, DivaError>)>();

    // `validate()` above rejected `Some(0)`, and `available_parallelism`
    // is at least 1, so the cap is always positive.
    let hw = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let n_workers = members.len().min(config.threads.unwrap_or(hw));
    root_span.set_attr("workers", n_workers);
    for _ in 0..n_workers {
        let members = Arc::clone(&members);
        let rel = Arc::clone(&rel);
        let sigma = Arc::clone(&sigma);
        let runner = Arc::clone(&runner);
        let controls = controls.clone();
        let next = Arc::clone(&next);
        let obs = obs.clone();
        let tx = tx.clone();
        std::thread::spawn(move || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= members.len() || controls.is_cancelled() {
                break;
            }
            // Each member runs under its own span, explicitly parented
            // to the portfolio root (worker threads have no implicit
            // span stack): the span's start/duration gives the member's
            // start and finish/cancel latency, and the attrs identify
            // the strategy and derived seed.
            let mut member_span = obs
                .span("portfolio.member")
                .attr("member", i)
                .attr("strategy", members[i].strategy.name())
                .attr("seed", members[i].seed);
            if let Some(id) = root_id {
                member_span = member_span.with_parent(id);
            }
            // Panic containment: a panicking member (fault injection,
            // or a real bug) becomes a WorkerPanicked verdict rather
            // than a silently dropped sender, so the portfolio can
            // still account for every member.
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                #[cfg(feature = "fault-inject")]
                members[i].faults.worker_panic_point(i);
                runner(&members[i], &rel, &sigma, &controls)
            }))
            .unwrap_or_else(|payload| {
                Err(DivaError::WorkerPanicked { detail: panic_message(payload.as_ref()) })
            });
            let outcome = match &out {
                Ok(res) if res.outcome.is_exact() => "success",
                Ok(_) => "degraded",
                Err(DivaError::Cancelled) => "cancelled",
                Err(DivaError::WorkerPanicked { .. }) => "panicked",
                Err(_) => "failure",
            };
            member_span.set_attr("outcome", outcome);
            member_span.end();
            obs.counter(&format!("portfolio.{outcome}")).incr();
            // A dropped receiver just means someone else already won.
            if tx.send((i, out)).is_err() {
                break;
            }
        });
    }
    drop(tx);

    let mut best_err: Option<DivaError> = None;
    let mut panic_detail: Option<String> = None;
    while let Ok((winner, outcome)) = rx.recv() {
        match outcome {
            // Exact winner or budget-degraded member: either way the
            // portfolio is decided (the budget is shared, so one
            // member's exhaustion is everyone's) — cancel the rest and
            // return.
            Ok(res) => {
                controls.request_cancel();
                // Surface the winner's decision log through the
                // caller's handle (no-op when provenance is off).
                config.provenance.adopt(&members[winner].provenance);
                root_span.set_attr(
                    "outcome",
                    if res.outcome.is_exact() { "success" } else { "degraded" },
                );
                root_span.end();
                return Ok(res);
            }
            // A member that observed the token mid-run carries no
            // verdict; it never reaches this loop before a win anyway.
            Err(DivaError::Cancelled) => {}
            Err(DivaError::WorkerPanicked { detail }) => {
                panic_detail = Some(detail);
            }
            Err(e) => {
                let stronger =
                    matches!(e, DivaError::NoDiverseClustering { .. }) || best_err.is_none();
                if stronger {
                    best_err = Some(e);
                }
            }
        }
    }
    // A complete unsatisfiability proof from any member is the true
    // verdict, panics elsewhere notwithstanding.
    if matches!(best_err, Some(DivaError::NoDiverseClustering { .. })) {
        root_span.set_attr("outcome", "failure");
        root_span.end();
        return Err(best_err.unwrap_or(DivaError::EmptyPortfolio));
    }
    // Members were lost to panics and nobody proved anything: degrade
    // to the fully-suppressed fallback rather than failing the caller.
    if let Some(detail) = panic_detail {
        root_span.set_attr("outcome", "degraded");
        root_span.end();
        return Diva::new(config.clone()).degraded_fallback(
            &rel,
            &sigma,
            DegradeReason::WorkerPanic { detail },
        );
    }
    // Every sender is dropped only after all members completed; a
    // missing verdict can only mean the portfolio was empty.
    root_span.set_attr("outcome", "failure");
    root_span.end();
    Err(best_err.unwrap_or(DivaError::EmptyPortfolio))
}

/// Best-effort stringification of a caught panic payload. Shared with
/// the component worker pool ([`crate::pool`]), which contains panics
/// the same way.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    use diva_constraints::ConstraintSet;
    use diva_relation::fixtures::paper_table1;
    use diva_relation::is_k_anonymous;

    use crate::diva::RunStats;

    fn example_sigma() -> Vec<Constraint> {
        vec![
            Constraint::single("ETH", "Asian", 2, 5),
            Constraint::single("ETH", "African", 1, 3),
            Constraint::single("CTY", "Vancouver", 2, 4),
        ]
    }

    #[test]
    fn portfolio_solves_paper_example() {
        let r = paper_table1();
        let out = run_portfolio(&r, &example_sigma(), &DivaConfig::with_k(2), 2).unwrap();
        assert!(is_k_anonymous(&out.relation, 2));
        let set = ConstraintSet::bind(&example_sigma(), &out.relation).unwrap();
        assert!(set.satisfied_by(&out.relation));
    }

    #[test]
    fn portfolio_adopts_the_winner_provenance() {
        let r = paper_table1();
        let prov = diva_obs::Provenance::enabled();
        let config = DivaConfig::with_k(2).provenance(prov.clone());
        let out = run_portfolio(&r, &example_sigma(), &config, 2).unwrap();
        let attr = out.stats.attribution.clone().expect("winner carries attribution");
        assert_eq!(attr.total(), out.relation.star_count() as u64);
        // The winner's log was adopted into the caller's handle and
        // matches the published result.
        let log = prov.snapshot().expect("caller handle holds the winner log");
        diva_obs::provenance::validate_log(&log).unwrap();
        assert_eq!(log.cells.len() as u64, attr.total());
        assert_eq!(log.n_rows, r.n_rows() as u64);
    }

    #[test]
    fn portfolio_propagates_unsatisfiability() {
        let r = paper_table1();
        let sigma = vec![Constraint::single("ETH", "Asian", 6, 10)];
        let err = run_portfolio(&r, &sigma, &DivaConfig::with_k(2), 1).unwrap_err();
        assert!(matches!(err, DivaError::NoDiverseClustering { .. }));
    }

    #[test]
    fn portfolio_on_larger_instance() {
        let r = diva_datagen::medical(1_000, 5);
        // Moderate retention demands: lower bounds around 30% of each
        // value's frequency. (Aggressive bounds make the instance
        // genuinely unsatisfiable: each constraint's own clustering
        // must meet its lower bound with clusters disjoint from other
        // constraints', so lower bounds compete for rows.)
        let sigma = diva_constraints::generators::proportional(&r, 5, 0.7, 20);
        let out = run_portfolio(&r, &sigma, &DivaConfig::with_k(5), 1).unwrap();
        assert!(is_k_anonymous(&out.relation, 5));
        let set = ConstraintSet::bind(&sigma, &out.relation).unwrap();
        assert!(set.satisfied_by(&out.relation));
    }

    #[test]
    fn portfolio_emits_member_spans() {
        let r = paper_table1();
        let obs = crate::obs::Obs::enabled();
        let config = DivaConfig::with_k(2).obs(obs.clone());
        run_portfolio(&r, &example_sigma(), &config, 2).unwrap();
        // Detached losers may still be winding down; only the root and
        // the winner are guaranteed recorded at return. Wait briefly
        // for the rest (members = 3 strategies × 2 seeds).
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let snap = obs.snapshot();
            let members: Vec<_> =
                snap.spans.iter().filter(|s| s.name == "portfolio.member").collect();
            let root = snap.spans.iter().find(|s| s.name == "portfolio.run");
            let done = snap.counter("portfolio.success").unwrap_or(0)
                + snap.counter("portfolio.failure").unwrap_or(0)
                + snap.counter("portfolio.cancelled").unwrap_or(0);
            if root.is_some() && !members.is_empty() && done == members.len() as u64 {
                let root_id = root.map(|s| s.id);
                for m in &members {
                    assert_eq!(m.parent, root_id, "member spans parent to portfolio.run");
                    assert!(
                        m.attrs.iter().any(|(k, _)| k == "seed"),
                        "member span carries its seed"
                    );
                    assert!(m.attrs.iter().any(|(k, _)| k == "outcome"));
                }
                assert!(snap.counter("portfolio.success").unwrap_or(0) >= 1);
                break;
            }
            assert!(Instant::now() < deadline, "portfolio spans never completed");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn zero_seeds_is_an_error() {
        let r = paper_table1();
        let err = run_portfolio(&r, &[], &DivaConfig::with_k(2), 0).unwrap_err();
        assert_eq!(err, DivaError::EmptyPortfolio);
    }

    #[test]
    fn thread_cap_of_one_still_completes() {
        let r = paper_table1();
        let mut config = DivaConfig::with_k(2);
        config.threads = Some(1);
        let out = run_portfolio(&r, &example_sigma(), &config, 2).unwrap();
        assert!(is_k_anonymous(&out.relation, 2));
    }

    fn dummy_result() -> DivaResult {
        DivaResult {
            relation: paper_table1(),
            groups: Vec::new(),
            source_rows: Vec::new(),
            stats: RunStats::default(),
            outcome: crate::Outcome::Exact,
        }
    }

    #[test]
    fn winner_returns_without_waiting_for_slow_losers() {
        // One fast winner (the first member: MinChoice at the base
        // seed), every other member "searches" until cancelled (capped
        // at 10 s so a regression fails rather than hangs). The
        // portfolio must return in roughly the winner's wall-clock.
        let r = paper_table1();
        let config = DivaConfig::with_k(2);
        let base_seed = config.seed;
        let t0 = Instant::now();
        let out = run_portfolio_with(&r, &[], &config, 2, move |member, _rel, _sigma, controls| {
            if member.strategy == Strategy::MinChoice && member.seed == base_seed {
                std::thread::sleep(Duration::from_millis(20));
                return Ok(dummy_result());
            }
            let start = Instant::now();
            while start.elapsed() < Duration::from_secs(10) {
                if controls.is_cancelled() {
                    return Err(DivaError::Cancelled);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(DivaError::SearchBudgetExhausted { backtracks: 0 })
        })
        .unwrap();
        let elapsed = t0.elapsed();
        assert!(out.groups.is_empty(), "got the synthetic winner");
        assert!(elapsed < Duration::from_secs(5), "portfolio waited for losers: {elapsed:?}");
    }

    #[test]
    fn all_failures_return_strongest_verdict() {
        let r = paper_table1();
        let out = run_portfolio_with(
            &r,
            &[],
            &DivaConfig::with_k(2),
            1,
            |member, _rel, _sigma, _controls| {
                if member.strategy == Strategy::Basic {
                    Err(DivaError::NoDiverseClustering { constraint: "X[x]".into() })
                } else {
                    Err(DivaError::SearchBudgetExhausted { backtracks: 1 })
                }
            },
        );
        assert!(matches!(out.unwrap_err(), DivaError::NoDiverseClustering { .. }));
    }

    #[test]
    fn panicking_member_does_not_sink_the_portfolio() {
        // Two of three strategies panic mid-search; the survivor's
        // result must still come back, not an EmptyPortfolio from
        // dropped senders.
        let r = paper_table1();
        let out = run_portfolio_with(
            &r,
            &[],
            &DivaConfig::with_k(2),
            1,
            |member, _rel, _sigma, _controls| {
                if member.strategy == Strategy::MinChoice {
                    return Ok(dummy_result());
                }
                panic!("synthetic worker bug");
            },
        )
        .unwrap();
        assert!(out.outcome.is_exact());
    }

    #[test]
    fn all_members_panicking_degrades_instead_of_erroring() {
        let r = paper_table1();
        let sigma = vec![Constraint::single("ETH", "Asian", 2, 5)];
        let out = run_portfolio_with(
            &r,
            &sigma,
            &DivaConfig::with_k(2),
            1,
            |_member, _rel, _sigma, _controls| -> Result<DivaResult, DivaError> {
                panic!("synthetic worker bug");
            },
        )
        .unwrap();
        match &out.outcome {
            crate::Outcome::Degraded { reason: crate::DegradeReason::WorkerPanic { detail } } => {
                assert!(detail.contains("synthetic worker bug"));
            }
            other => panic!("expected WorkerPanic degradation, got {other:?}"),
        }
        // The fallback publishes every row, fully QI-suppressed.
        assert_eq!(out.relation.n_rows(), r.n_rows());
        assert!(is_k_anonymous(&out.relation, 2));
        assert_eq!(out.groups.len(), 1);
    }

    #[test]
    fn unsat_proof_beats_worker_panics() {
        let r = paper_table1();
        let out = run_portfolio_with(
            &r,
            &[],
            &DivaConfig::with_k(2),
            1,
            |member, _rel, _sigma, _controls| {
                if member.strategy == Strategy::MaxFanOut {
                    return Err(DivaError::NoDiverseClustering { constraint: "X[x]".into() });
                }
                panic!("synthetic worker bug");
            },
        );
        assert!(matches!(out.unwrap_err(), DivaError::NoDiverseClustering { .. }));
    }

    #[test]
    fn zero_deadline_portfolio_degrades_on_the_real_pipeline() {
        let r = paper_table1();
        let config = DivaConfig::with_k(2).budget(crate::BudgetSpec::with_deadline(Duration::ZERO));
        let out = run_portfolio(&r, &example_sigma(), &config, 2).unwrap();
        assert!(!out.outcome.is_exact(), "zero deadline must degrade");
        assert!(is_k_anonymous(&out.relation, 2));
        assert_eq!(out.relation.n_rows(), r.n_rows());
        assert!(out.stats.budget.is_some(), "budget usage recorded");
    }

    #[test]
    fn generous_budget_portfolio_still_exact() {
        let r = paper_table1();
        let config = DivaConfig::with_k(2)
            .budget(crate::BudgetSpec::with_deadline(Duration::from_secs(600)));
        let out = run_portfolio(&r, &example_sigma(), &config, 1).unwrap();
        assert!(out.outcome.is_exact());
        let set = ConstraintSet::bind(&example_sigma(), &out.relation).unwrap();
        assert!(set.satisfied_by(&out.relation));
    }
}
