//! DIVA configuration: node-selection strategies and search knobs.

/// The `NextNode` strategy of the colouring search (§3.3, "Selection
/// Strategies").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// DIVA-Basic: pick a random uncoloured node, and try that node's
    /// candidate clusterings in random order.
    Basic,
    /// MinChoice: pick the most restrictive constraint first — the
    /// uncoloured node with the minimum number of *currently
    /// consistent* candidate clusterings (counts are updated as
    /// neighbours get coloured).
    MinChoice,
    /// MaxFanOut: pick the constraint with the maximum number of
    /// uncoloured neighbours, pruning unsatisfiable clusterings early.
    MaxFanOut,
}

impl Strategy {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Basic => "Basic",
            Strategy::MinChoice => "MinChoice",
            Strategy::MaxFanOut => "MaxFanOut",
        }
    }

    /// All strategies, in the order the paper's legends list them.
    pub fn all() -> [Strategy; 3] {
        [Strategy::MinChoice, Strategy::MaxFanOut, Strategy::Basic]
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which ℓ-diversity variant [`DivaConfig::l_diversity`] requests.
/// The variant interprets the single `l_diversity` knob; recursive
/// additionally carries its frequency-ratio parameter `c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LVariant {
    /// Distinct ℓ-diversity (the historical default).
    Distinct,
    /// Entropy ℓ-diversity: class perplexity `exp(H) ≥ ℓ`.
    Entropy,
    /// Recursive (c,ℓ)-diversity with the given `c`.
    Recursive {
        /// The frequency-ratio parameter `c` (finite and positive).
        c: f64,
    },
}

/// Configuration of a DIVA run.
#[derive(Debug, Clone)]
pub struct DivaConfig {
    /// The privacy parameter `k` of `k`-anonymity.
    pub k: usize,
    /// Node/candidate selection strategy.
    pub strategy: Strategy,
    /// Maximum number of candidate clusterings generated per
    /// constraint. The paper bounds the clusterings "considered in
    /// coloring for each constraint" to a polynomial; this is the
    /// concrete cap (see `DESIGN.md` §2.2).
    pub max_candidates: usize,
    /// Backtracking budget for the colouring search; `None` means
    /// unbounded (exact, possibly exponential — the paper's Basic
    /// curve in Fig. 4a).
    pub backtrack_limit: Option<u64>,
    /// Seed for all randomized choices (Basic ordering, the
    /// `Anonymize` step's clustering).
    pub seed: u64,
    /// Privacy extension (§5 of the paper): require every QI-group of
    /// the output to contain at least this many *distinct* sensitive
    /// values (distinct ℓ-diversity). `1` (the default) disables the
    /// requirement, i.e. plain k-anonymity.
    pub l_diversity: usize,
    /// Which ℓ-diversity variant `l_diversity` requests
    /// ([`LVariant::Distinct`] by default). Entropy and recursive
    /// (c,ℓ) are enforced through the same Suppress/repair merge path
    /// and re-verified by the independent `diva-metrics` audit
    /// checkers.
    pub l_variant: LVariant,
    /// Whether blocked candidates are re-materialized from free target
    /// tuples ([`crate::CandidateSet::repair`]). On by default; the
    /// ablation benches measure its effect on success rate and
    /// backtracking.
    pub enable_repair: bool,
    /// Worker-thread cap for the parallel portfolio
    /// ([`crate::run_portfolio`]) and the component worker pool.
    /// `None` (the default) uses
    /// `std::thread::available_parallelism()`.
    pub threads: Option<usize>,
    /// Whether the clustering phase decomposes the constraint graph
    /// into connected components and solves them concurrently on the
    /// bounded worker pool (on by default). Components are provably
    /// independent sub-problems, so the published output is
    /// byte-identical either way for exact outcomes — `false` forces
    /// the historical monolithic solve (the differential suite's
    /// reference path).
    pub decompose: bool,
    /// Node-count threshold at which a single hard component is solved
    /// by an inner strategy portfolio (the three strategies racing on
    /// that component, first valid colouring wins) instead of the
    /// configured strategy alone. `None` (the default) disables the
    /// inner portfolio; racing trades the byte-for-byte determinism of
    /// the single-strategy pool for robustness on adversarial
    /// components, exactly like [`crate::run_portfolio`] at whole-run
    /// scope.
    pub component_portfolio: Option<usize>,
    /// Observability handle: spans, counters, and histograms emitted
    /// by the pipeline land here. The default is the disabled handle
    /// ([`diva_obs::Obs::disabled`]), which records nothing and costs
    /// one branch per instrumentation point — pipeline output is
    /// byte-identical either way.
    pub obs: diva_obs::Obs,
    /// Resource budget (wall-clock deadline, explored-node cap,
    /// repair-attempt cap) for the run — or, under
    /// [`crate::run_portfolio`], one global budget shared by every
    /// member. Exhaustion degrades the run
    /// ([`crate::Outcome::Degraded`]) instead of failing it; the
    /// default is unlimited. Contrast with
    /// [`DivaConfig::backtrack_limit`], which keeps its historical
    /// fail-fast semantics
    /// ([`DivaError::SearchBudgetExhausted`][crate::DivaError]).
    pub budget: crate::BudgetSpec,
    /// Live-telemetry progress board
    /// ([`diva_obs::live::ProgressBoard`]): in-flight counters
    /// (phase, nodes expanded, repairs, components, budget cells)
    /// published from the existing cancellation poll points for the
    /// sampler/stats endpoint to read. The default is the disabled
    /// board, which costs one branch per publish and keeps the run
    /// byte-identical to one without live telemetry. The board's
    /// degrade-request flag is the stall watchdog's escalation
    /// channel ([`crate::DegradeReason::Stalled`]).
    pub board: diva_obs::live::ProgressBoard,
    /// Decision-provenance recorder
    /// ([`diva_obs::provenance::Provenance`]): when enabled, the run
    /// logs every published group and every starred cell with the
    /// causal decision (Σ-constraint, repair round, void, degrade
    /// merge, or plain k-anonymity) for `diva explain` and the
    /// per-constraint attribution in `RunStats`. The default is the
    /// disabled handle — one branch per recording site, output
    /// byte-identical either way (same contract as `obs`/`board`).
    pub provenance: diva_obs::provenance::Provenance,
    /// Deterministic fault-injection plan (testing/CI only; the field
    /// exists only under the `fault-inject` feature). The default
    /// injects nothing.
    #[cfg(feature = "fault-inject")]
    pub faults: crate::faults::FaultPlan,
}

impl Default for DivaConfig {
    fn default() -> Self {
        Self {
            k: 10,
            strategy: Strategy::MaxFanOut,
            max_candidates: 64,
            backtrack_limit: Some(100_000),
            seed: 0xd1fa,
            l_diversity: 1,
            l_variant: LVariant::Distinct,
            enable_repair: true,
            threads: None,
            decompose: true,
            component_portfolio: None,
            obs: diva_obs::Obs::disabled(),
            budget: crate::BudgetSpec::default(),
            board: diva_obs::live::ProgressBoard::disabled(),
            provenance: diva_obs::provenance::Provenance::disabled(),
            #[cfg(feature = "fault-inject")]
            faults: crate::faults::FaultPlan::default(),
        }
    }
}

impl DivaConfig {
    /// A configuration with the given `k` and defaults elsewhere.
    pub fn with_k(k: usize) -> Self {
        Self { k, ..Self::default() }
    }

    /// Builder-style strategy override.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style seed override.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style ℓ-diversity requirement (1 = off).
    pub fn l_diversity(mut self, l: usize) -> Self {
        self.l_diversity = l;
        self
    }

    /// Builder-style ℓ-diversity variant (see [`DivaConfig::l_variant`]).
    pub fn l_variant(mut self, v: LVariant) -> Self {
        self.l_variant = v;
        self
    }

    /// The effective diversity model requested by `l_diversity` +
    /// `l_variant`, or `None` when the requirement is trivial (every
    /// non-empty class satisfies it) and enforcement can be skipped.
    pub fn diversity_model(&self) -> Option<diva_anonymize::DiversityModel> {
        use diva_anonymize::DiversityModel;
        let model = match self.l_variant {
            LVariant::Distinct => DiversityModel::Distinct { l: self.l_diversity },
            LVariant::Entropy => DiversityModel::Entropy { l: self.l_diversity },
            LVariant::Recursive { c } => DiversityModel::Recursive { c, l: self.l_diversity },
        };
        (!model.is_trivial()).then_some(model)
    }

    /// Builder-style observability handle (see [`DivaConfig::obs`]).
    pub fn obs(mut self, obs: diva_obs::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Builder-style resource budget (see [`DivaConfig::budget`]).
    pub fn budget(mut self, budget: crate::BudgetSpec) -> Self {
        self.budget = budget;
        self
    }

    /// Builder-style live-telemetry board (see [`DivaConfig::board`]).
    pub fn board(mut self, board: diva_obs::live::ProgressBoard) -> Self {
        self.board = board;
        self
    }

    /// Builder-style provenance recorder (see
    /// [`DivaConfig::provenance`]).
    pub fn provenance(mut self, provenance: diva_obs::provenance::Provenance) -> Self {
        self.provenance = provenance;
        self
    }

    /// Builder-style fault-injection plan (see [`DivaConfig::faults`]).
    #[cfg(feature = "fault-inject")]
    pub fn faults(mut self, faults: crate::faults::FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Builder-style decomposition toggle (see
    /// [`DivaConfig::decompose`]).
    pub fn decompose(mut self, on: bool) -> Self {
        self.decompose = on;
        self
    }

    /// Builder-style inner-portfolio threshold (see
    /// [`DivaConfig::component_portfolio`]).
    pub fn component_portfolio(mut self, threshold: Option<usize>) -> Self {
        self.component_portfolio = threshold;
        self
    }

    /// Builder-style worker-thread cap; use at construction so an
    /// out-of-range value is rejected up front.
    pub fn threads(mut self, threads: Option<usize>) -> Result<Self, crate::DivaError> {
        self.threads = threads;
        self.validate()?;
        Ok(self)
    }

    /// Checks range constraints that the field types can't express.
    /// Called by [`crate::run_portfolio`] and [`crate::Diva::run`];
    /// `threads == Some(0)` is rejected rather than silently promoted
    /// to one worker.
    pub fn validate(&self) -> Result<(), crate::DivaError> {
        if self.threads == Some(0) {
            return Err(crate::DivaError::InvalidConfig {
                reason: "threads must be a positive worker count (or None for all cores)".into(),
            });
        }
        if let LVariant::Recursive { c } = self.l_variant {
            if !(c.is_finite() && c > 0.0) {
                return Err(crate::DivaError::InvalidConfig {
                    reason: format!("recursive (c,l)-diversity needs a finite positive c, got {c}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = DivaConfig::default();
        assert!(c.k > 0);
        assert!(c.max_candidates > 0);
        assert_eq!(c.strategy, Strategy::MaxFanOut);
    }

    #[test]
    fn builders_compose() {
        let c = DivaConfig::with_k(5).strategy(Strategy::Basic).seed(9);
        assert_eq!(c.k, 5);
        assert_eq!(c.strategy, Strategy::Basic);
        assert_eq!(c.seed, 9);
        assert!(c.decompose, "decomposition is on by default");
        assert!(c.component_portfolio.is_none());
        let c = c.decompose(false).component_portfolio(Some(8));
        assert!(!c.decompose);
        assert_eq!(c.component_portfolio, Some(8));
    }

    #[test]
    fn zero_threads_is_rejected() {
        assert!(DivaConfig::default().threads(Some(0)).is_err());
        assert!(DivaConfig::default().threads(Some(2)).is_ok());
        assert!(DivaConfig::default().threads(None).is_ok());
        let c = DivaConfig { threads: Some(0), ..DivaConfig::default() };
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("threads"));
    }

    #[test]
    fn default_budget_is_unlimited() {
        let c = DivaConfig::default();
        assert!(c.budget.is_unlimited());
        let c = c.budget(crate::BudgetSpec::with_node_budget(512));
        assert_eq!(c.budget.node_budget, Some(512));
    }

    #[test]
    fn default_board_is_disabled() {
        let c = DivaConfig::default();
        assert!(!c.board.is_enabled(), "live telemetry must be opt-in");
        let c = c.board(diva_obs::live::ProgressBoard::enabled());
        assert!(c.board.is_enabled());
    }

    #[test]
    fn default_provenance_is_disabled() {
        let c = DivaConfig::default();
        assert!(!c.provenance.is_enabled(), "provenance must be opt-in");
        let c = c.provenance(diva_obs::provenance::Provenance::enabled());
        assert!(c.provenance.is_enabled());
    }

    #[test]
    fn strategy_names_match_paper() {
        assert_eq!(Strategy::Basic.to_string(), "Basic");
        assert_eq!(Strategy::MinChoice.to_string(), "MinChoice");
        assert_eq!(Strategy::MaxFanOut.to_string(), "MaxFanOut");
        assert_eq!(Strategy::all().len(), 3);
    }
}
