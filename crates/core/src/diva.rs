//! The DIVA pipeline (Algorithm 1): DiverseClustering → Suppress →
//! Anonymize → Integrate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use diva_anonymize::{
    cluster_observed_interruptible, enforce_diversity_traced, Anonymizer, KMember,
};
use diva_constraints::{Constraint, ConstraintSet};
use diva_relation::suppress::{suppress_clustering, Suppressed};
use diva_relation::{is_k_anonymous, Relation, RowId, STAR_CODE};

use diva_obs::provenance::{Cause, GroupOrigin, Provenance};
use diva_obs::{AllocDelta, SpanClose};

use crate::budget::{Budget, BudgetUsage, Controls, DegradeReason, Outcome};
use crate::candidates::CandidateSet;
use crate::coloring::ColoringStats;
use crate::config::{DivaConfig, Strategy};
use crate::error::DivaError;
use crate::graph::ConstraintGraph;
use crate::integrate::integrate;

/// Counters and timings of a DIVA run.
///
/// The timings are a view over the obs trace: each `t_*` field is the
/// duration returned by ending the corresponding pipeline span
/// (`diva.clustering`, `diva.suppress`, `diva.anonymize`,
/// `diva.integrate`, `diva.run`), so `RunStats` agrees with an
/// exported trace to the microsecond and stays populated even when
/// the handle is disabled (spans always measure; they only *record*
/// when enabled).
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// `|Σ|`.
    pub n_constraints: usize,
    /// Rows covered by the diverse clustering `S_Σ`.
    pub sigma_rows: usize,
    /// Candidate clusterings generated across all constraints.
    pub candidates_generated: usize,
    /// Colouring-search counters.
    pub coloring: ColoringStats,
    /// Upper-bound repairs applied by Integrate.
    pub integrate_repairs: usize,
    /// Time in DiverseClustering (graph + candidates + colouring).
    pub t_clustering: Duration,
    /// Time in the Suppress step applied to `S_Σ` (zero when the run
    /// folds a too-small residual instead of suppressing directly).
    pub t_suppress: Duration,
    /// Time in the off-the-shelf Anonymize step.
    pub t_anonymize: Duration,
    /// Time in Integrate.
    pub t_integrate: Duration,
    /// End-to-end time.
    pub t_total: Duration,
    /// Budget consumption at the end of the run; `None` when no budget
    /// was configured. Under a portfolio the budget is shared, so the
    /// snapshot reports portfolio-wide totals.
    pub budget: Option<BudgetUsage>,
    /// Per-phase memory attribution, mirroring the `t_*` fields the
    /// same way: each delta is what the running thread allocated
    /// inside the corresponding span. `None` unless the counting
    /// allocator is live in this process (`diva-obs`'s
    /// `alloc-profile` feature plus an installed
    /// `#[global_allocator]` — see `diva_obs::alloc`).
    pub alloc: Option<PhaseAlloc>,
    /// Per-constraint star attribution from the decision-provenance
    /// recorder: how many published stars each Σ-constraint caused
    /// (plus the k-anonymity and degrade buckets; the buckets
    /// partition the starred cells, so the total equals the published
    /// star count). `None` unless [`DivaConfig::provenance`] is
    /// enabled.
    pub attribution: Option<diva_obs::StarAttribution>,
}

/// Per-phase allocation deltas for one run; the memory-side mirror of
/// the `t_*` timing fields on [`RunStats`]. Phases the run never
/// entered keep zeroed deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseAlloc {
    /// DiverseClustering (`diva.clustering`).
    pub clustering: AllocDelta,
    /// Suppress (`diva.suppress`).
    pub suppress: AllocDelta,
    /// Anonymize (`diva.anonymize`).
    pub anonymize: AllocDelta,
    /// Integrate (`diva.integrate`).
    pub integrate: AllocDelta,
    /// Degraded-mode materialization (`diva.degrade`).
    pub degrade: AllocDelta,
    /// The whole run (`diva.run`), including phase-external work.
    pub total: AllocDelta,
}

/// Mirrors a profiled span close into `stats.alloc` — a no-op when
/// profiling is inactive, so un-instrumented runs keep `alloc: None`
/// and their output byte-identical.
fn note_alloc(
    stats: &mut RunStats,
    close: &SpanClose,
    pick: impl FnOnce(&mut PhaseAlloc) -> &mut AllocDelta,
) {
    if let Some(delta) = close.alloc {
        *pick(stats.alloc.get_or_insert_with(PhaseAlloc::default)) = delta;
    }
}

/// The output of a DIVA run: a `k`-anonymous relation satisfying `Σ`
/// exactly, or — when a resource budget tripped — the degraded-mode
/// fallback tagged by [`DivaResult::outcome`].
#[derive(Debug)]
pub struct DivaResult {
    /// The published relation `R′`.
    pub relation: Relation,
    /// QI-groups of `R′` as output-row indices (`S_Σ` clusters first,
    /// then the `Anonymize` groups; in degraded mode the kept prefix
    /// clusters followed by one fully-suppressed block).
    pub groups: Vec<Vec<RowId>>,
    /// Maps output rows to rows of the input relation (witnesses
    /// `R ⊑ R′`).
    pub source_rows: Vec<RowId>,
    /// Run counters and timings.
    pub stats: RunStats,
    /// Whether this is the exact answer or a budget-degraded fallback
    /// (see `DESIGN.md` §10 for the degraded-mode contract).
    pub outcome: Outcome,
}

/// The DIVA algorithm.
///
/// ```
/// use diva_core::{Diva, DivaConfig, Strategy};
/// use diva_constraints::Constraint;
/// use diva_relation::fixtures::paper_table1;
///
/// let r = paper_table1();
/// let sigma = vec![
///     Constraint::single("ETH", "Asian", 2, 5),
///     Constraint::single("ETH", "African", 1, 3),
///     Constraint::single("CTY", "Vancouver", 2, 4),
/// ];
/// let diva = Diva::new(DivaConfig::with_k(2));
/// let out = diva.run(&r, &sigma).expect("the paper's example is satisfiable");
/// assert!(diva_relation::is_k_anonymous(&out.relation, 2));
/// ```
pub struct Diva {
    config: DivaConfig,
    anonymizer: Box<dyn Anonymizer + Send + Sync>,
}

impl Diva {
    /// DIVA with the paper's default `Anonymize` step (k-member [6]).
    pub fn new(config: DivaConfig) -> Self {
        let anonymizer = Box::new(KMember { seed: config.seed, ..KMember::default() });
        Self { config, anonymizer }
    }

    /// DIVA with a custom anonymization algorithm — "amenable to any
    /// anonymization alg." (Figure 1).
    pub fn with_anonymizer(
        config: DivaConfig,
        anonymizer: Box<dyn Anonymizer + Send + Sync>,
    ) -> Self {
        Self { config, anonymizer }
    }

    /// The configuration.
    pub fn config(&self) -> &DivaConfig {
        &self.config
    }

    /// Solves the (k, Σ)-anonymization problem for `rel`. With a
    /// configured [`DivaConfig::budget`], exhaustion returns the
    /// degraded-mode result ([`Outcome::Degraded`]) instead of an
    /// error.
    pub fn run(&self, rel: &Relation, sigma: &[Constraint]) -> Result<DivaResult, DivaError> {
        self.run_inner(rel, sigma, None, self.config.budget.arm())
    }

    /// [`Diva::run`] with a cancellation token: when `cancel` is set
    /// (by a winning portfolio sibling), the run aborts with
    /// [`DivaError::Cancelled`] at the next poll point or phase
    /// boundary instead of finishing its search.
    pub fn run_cancellable(
        &self,
        rel: &Relation,
        sigma: &[Constraint],
        cancel: &Arc<AtomicBool>,
    ) -> Result<DivaResult, DivaError> {
        self.run_inner(rel, sigma, Some(cancel), self.config.budget.arm())
    }

    /// [`Diva::run`] under shared [`Controls`]: the portfolio entry
    /// point, where the cancellation token and the (already-armed,
    /// globally shared) budget both come from the caller.
    pub fn run_controlled(
        &self,
        rel: &Relation,
        sigma: &[Constraint],
        controls: &Controls,
    ) -> Result<DivaResult, DivaError> {
        let budget = controls.budget().cloned().or_else(|| self.config.budget.arm());
        self.run_inner(rel, sigma, Some(controls.cancel_flag()), budget)
    }

    fn run_inner(
        &self,
        rel: &Relation,
        sigma: &[Constraint],
        cancel: Option<&Arc<AtomicBool>>,
        budget: Option<Arc<Budget>>,
    ) -> Result<DivaResult, DivaError> {
        let obs = &self.config.obs;
        let mut run_span = obs
            .span("diva.run")
            .attr("rows", rel.n_rows())
            .attr("k", self.config.k)
            .attr("strategy", self.config.strategy.name())
            .attr("constraints", sigma.len());
        if self.config.k == 0 {
            return Err(DivaError::InvalidK);
        }
        self.config.validate()?;
        let cancelled = || cancel.is_some_and(|c| c.load(Ordering::Relaxed));
        if cancelled() {
            return Err(DivaError::Cancelled);
        }
        let set = ConstraintSet::bind(sigma, rel)?;
        let board = &self.config.board;
        board.set_constraints_total(set.len() as u64);
        let prov = &self.config.provenance;
        if prov.is_enabled() {
            prov.begin_run(
                self.config.k as u64,
                rel.n_rows() as u64,
                set.constraints().iter().map(|c| c.label()).collect(),
            );
        }
        if let Some(b) = &budget {
            board.set_budget_limits(b.spec().node_budget, b.spec().deadline);
        }
        let mut stats = RunStats { n_constraints: set.len(), ..RunStats::default() };
        // Phase-boundary deadline checks are cheap (one clock read);
        // the finer-grained node/repair charging happens inside the
        // search's poll points.
        let deadline_hit = |b: &Option<Arc<Budget>>| b.as_ref().and_then(|b| b.check_deadline());
        if let Some(reason) = deadline_hit(&budget) {
            return self.degraded_result(rel, &set, Vec::new(), reason, stats, run_span, &budget);
        }

        // --- DiverseClustering (Algorithm 3). ---
        board.set_phase(diva_obs::live::Phase::Clustering);
        let mut clustering_span = obs.span("diva.clustering");
        let graph_span = obs.span("graph.build");
        let graph = ConstraintGraph::build(&set);
        graph_span.end();
        graph.record_to(obs);
        #[cfg(feature = "strict-invariants")]
        graph.validate().map_err(|detail| inv("BuildGraph", detail))?;
        let shuffle = (self.config.strategy == Strategy::Basic).then_some(self.config.seed);
        // Candidate enumeration is independent per constraint — the
        // natural "satisfy constraints in parallel" decomposition the
        // paper's future-work section sketches — so fan it out over a
        // scoped thread pool for multi-constraint inputs. Enumeration
        // is the longest uninterruptible stretch on large inputs, so
        // the budget's deadline (and the cancellation token) reach
        // inside it via the stop probe; the search's entry poll then
        // converts the fired probe into a degradation or cancellation.
        let stop = || deadline_hit(&budget).is_some() || cancelled();
        let enumerate_one = |c: &diva_constraints::BoundConstraint| {
            CandidateSet::enumerate_interruptible(
                rel,
                c,
                self.config.k,
                self.config.max_candidates,
                shuffle,
                // Every diversity variant implies ≥ l distinct
                // sensitive values per class, so the model's l is a
                // sound enumeration-time filter for all of them.
                self.config.diversity_model().map_or(1, |m| m.l()),
                &stop,
            )
        };
        let candidates: Vec<CandidateSet> = if set.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = set
                    .constraints()
                    .iter()
                    .map(|c| scope.spawn(move || enumerate_one(c)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().map_err(|_| DivaError::InvariantViolated {
                            phase: "CandidateEnumeration".into(),
                            detail: "enumeration worker panicked".into(),
                        })
                    })
                    .collect::<Result<_, _>>()
            })?
        } else {
            set.constraints().iter().map(enumerate_one).collect()
        };
        stats.candidates_generated = candidates.iter().map(CandidateSet::len).sum();
        for cs in &candidates {
            cs.record_to(obs);
        }
        let uppers: Vec<usize> = set.constraints().iter().map(|c| c.upper).collect();
        let labels: Vec<String> = set.constraints().iter().map(|c| c.label()).collect();
        // Decomposition layer: connected components of the constraint
        // graph are independent sub-problems, solved concurrently as
        // compact local instances and merged back (byte-identical to
        // the monolithic search for exact outcomes — DESIGN.md §12).
        let outcome = crate::decompose::solve_clustering(
            &graph,
            &candidates,
            &uppers,
            &labels,
            &self.config,
            cancel,
            budget.as_ref(),
        )?;
        stats.coloring = outcome.stats.clone();
        let search_degraded = outcome.degraded;
        let mut s_sigma: Vec<Vec<RowId>> = outcome.clusters;
        // Per-cluster owning constraints, parallel to `s_sigma`;
        // populated by the search only when provenance is recording.
        let sigma_owners = outcome.owners;
        #[cfg(feature = "strict-invariants")]
        check_partition("DiverseClustering", &s_sigma, rel.n_rows(), false)?;
        stats.sigma_rows = s_sigma.iter().map(Vec::len).sum();
        let cluster_sizes = obs.histogram("cluster.size");
        for c in &s_sigma {
            cluster_sizes.record_len(c.len());
        }
        clustering_span.set_attr("candidates", stats.candidates_generated);
        clustering_span.set_attr("clusters", s_sigma.len());
        clustering_span.set_attr("sigma_rows", stats.sigma_rows);
        let close = clustering_span.end_profiled();
        stats.t_clustering = close.dur;
        note_alloc(&mut stats, &close, |p| &mut p.clustering);
        if let Some(reason) = search_degraded {
            return self.degraded_result(rel, &set, s_sigma, reason, stats, run_span, &budget);
        }
        // An exact (non-degraded) colouring satisfies every bound
        // constraint by construction.
        board.add_satisfied(set.len() as u64);

        // Rows not covered by S_Σ (Algorithm 1, line 4: R := R \ C_i).
        let mut covered = vec![false; rel.n_rows()];
        for c in &s_sigma {
            for &r in c {
                covered[r] = true;
            }
        }
        let rest: Vec<RowId> = (0..rel.n_rows()).filter(|&r| !covered[r]).collect();
        #[cfg(feature = "fault-inject")]
        self.config.faults.at_phase("clustering", cancel);
        if cancelled() {
            return Err(DivaError::Cancelled);
        }
        if let Some(reason) = deadline_hit(&budget) {
            return self.degraded_result(rel, &set, s_sigma, reason, stats, run_span, &budget);
        }

        // --- Anonymize + Integrate. ---
        if !rest.is_empty() && rest.len() < self.config.k {
            // Fewer residual tuples than k: no k-anonymous R_k exists.
            // Fold them into an existing S_Σ cluster if some choice
            // keeps Σ satisfied (checked exhaustively), else fail.
            board.set_phase(diva_obs::live::Phase::Anonymize);
            let anon_span = obs
                .span("diva.anonymize")
                .attr("fold_residual", true)
                .attr("residual_rows", rest.len());
            let (folded, fold_host) = self.fold_residual(rel, &set, &mut s_sigma, &rest)?;
            #[cfg(feature = "strict-invariants")]
            check_partition("Suppress", &folded.groups, folded.relation.n_rows(), true)?;
            let close = anon_span.end_profiled();
            stats.t_anonymize = close.dur;
            note_alloc(&mut stats, &close, |p| &mut p.anonymize);
            stats.sigma_rows = s_sigma.iter().map(Vec::len).sum();
            if prov.is_enabled() {
                // Folding can change any cluster's ownership (the host
                // absorbed non-target rows), so recompute owners from
                // the constraint set rather than reuse the search's.
                record_suppressed_groups(
                    prov,
                    &folded,
                    &s_sigma,
                    |ci| {
                        set.constraints()
                            .iter()
                            .enumerate()
                            .filter(|(_, c)| s_sigma[ci].iter().all(|&r| c.is_target(r)))
                            .map(|(i, _)| i as u32)
                            .collect()
                    },
                    |ci| if ci == fold_host { GroupOrigin::Fold } else { GroupOrigin::Sigma },
                );
            }
            board.set_phase(diva_obs::live::Phase::Integrate);
            let int_span = obs.span("diva.integrate");
            let out = integrate(&folded, None, &set)?;
            #[cfg(feature = "strict-invariants")]
            check_partition("Integrate", &out.groups, out.relation.n_rows(), true)?;
            stats.integrate_repairs = out.repairs;
            obs.counter("integrate.repairs").add(out.repairs as u64);
            let close = int_span.end_profiled();
            stats.t_integrate = close.dur;
            note_alloc(&mut stats, &close, |p| &mut p.integrate);
            run_span.set_attr("stars", out.relation.star_count());
            run_span.set_attr("outcome", "exact");
            stats.budget = budget.as_ref().map(|b| b.usage());
            stats.attribution = prov.attribution();
            let close = run_span.end_profiled();
            stats.t_total = close.dur;
            note_alloc(&mut stats, &close, |p| &mut p.total);
            board.set_phase(diva_obs::live::Phase::Done);
            return Ok(DivaResult {
                relation: out.relation,
                groups: out.groups,
                source_rows: out.source_rows,
                stats,
                outcome: Outcome::Exact,
            });
        }

        board.set_phase(diva_obs::live::Phase::Suppress);
        let suppress_span = obs.span("diva.suppress").attr("clusters", s_sigma.len());
        let r_sigma = suppress_clustering(rel, &s_sigma);
        #[cfg(feature = "strict-invariants")]
        check_partition("Suppress", &r_sigma.groups, r_sigma.relation.n_rows(), true)?;
        let close = suppress_span.end_profiled();
        stats.t_suppress = close.dur;
        note_alloc(&mut stats, &close, |p| &mut p.suppress);
        if cancelled() {
            return Err(DivaError::Cancelled);
        }
        if let Some(reason) = deadline_hit(&budget) {
            return self.degraded_result(rel, &set, s_sigma, reason, stats, run_span, &budget);
        }
        board.set_phase(diva_obs::live::Phase::Anonymize);
        let mut anon_span = obs.span("diva.anonymize").attr("residual_rows", rest.len());
        // Kept alongside `r_k` for provenance: the input clusters the
        // suppressed groups came from, and which of them absorbed a
        // sibling during ℓ-diversity enforcement.
        let mut rk_clusters: Vec<Vec<RowId>> = Vec::new();
        let mut ldiv_merged: Vec<bool> = Vec::new();
        let r_k: Option<Suppressed> = if rest.is_empty() {
            None
        } else {
            // The anonymizer's clustering is the pipeline's other long
            // uninterruptible stretch (k-member is O(n·cap) over the
            // residual); the stop probe reaches inside it, and an
            // abandoned clustering degrades with the clustered prefix.
            let Some(mut clusters) = cluster_observed_interruptible(
                self.anonymizer.as_ref(),
                rel,
                &rest,
                self.config.k,
                obs,
                &stop,
            ) else {
                let close = anon_span.end_profiled();
                stats.t_anonymize = close.dur;
                note_alloc(&mut stats, &close, |p| &mut p.anonymize);
                if cancelled() {
                    return Err(DivaError::Cancelled);
                }
                let Some(reason) = deadline_hit(&budget) else {
                    // The probe only fires on cancellation or deadline;
                    // both are sticky, so this is unreachable.
                    return Err(DivaError::Cancelled);
                };
                return self.degraded_result(rel, &set, s_sigma, reason, stats, run_span, &budget);
            };
            if let Some(model) = self.config.diversity_model() {
                let (merged, flags) =
                    enforce_diversity_traced(rel, &clusters, &model).ok_or_else(|| {
                        DivaError::PrivacyInfeasible {
                            reason: format!(
                                "residual tuples cannot satisfy {model}: even a single merged \
                                 class fails the check"
                            ),
                        }
                    })?;
                clusters = merged;
                ldiv_merged = flags;
            }
            #[cfg(feature = "strict-invariants")]
            {
                check_partition("Anonymize", &clusters, rel.n_rows(), false)?;
                let total: usize = clusters.iter().map(Vec::len).sum();
                if total != rest.len() {
                    return Err(inv(
                        "Anonymize",
                        format!("clusters cover {total} rows, residual has {}", rest.len()),
                    ));
                }
            }
            let rk = suppress_clustering(rel, &clusters);
            rk_clusters = clusters;
            Some(rk)
        };
        anon_span.set_attr("groups", r_k.as_ref().map_or(0, |rk| rk.groups.len()));
        let close = anon_span.end_profiled();
        stats.t_anonymize = close.dur;
        note_alloc(&mut stats, &close, |p| &mut p.anonymize);
        if cancelled() {
            return Err(DivaError::Cancelled);
        }
        if let Some(reason) = deadline_hit(&budget) {
            return self.degraded_result(rel, &set, s_sigma, reason, stats, run_span, &budget);
        }

        // Past the last degrade checkpoint: the run is committed to the
        // exact path, so the published groups and their stars can be
        // recorded (recording earlier would leave stale records behind
        // a later degrade).
        let mut k_gids: Vec<u64> = Vec::new();
        if prov.is_enabled() {
            record_suppressed_groups(
                prov,
                &r_sigma,
                &s_sigma,
                |ci| sigma_owners.get(ci).cloned().unwrap_or_default(),
                |_| GroupOrigin::Sigma,
            );
            if let Some(rk) = &r_k {
                k_gids = record_suppressed_groups(
                    prov,
                    rk,
                    &rk_clusters,
                    |_| Vec::new(),
                    |ci| {
                        if ldiv_merged.get(ci).copied().unwrap_or(false) {
                            GroupOrigin::DiversityMerge
                        } else {
                            GroupOrigin::KMember
                        }
                    },
                );
            }
        }
        board.set_phase(diva_obs::live::Phase::Integrate);
        let int_span = obs.span("diva.integrate");
        let out = crate::integrate::integrate_traced(&r_sigma, r_k.as_ref(), &set, prov, &k_gids)?;
        #[cfg(feature = "strict-invariants")]
        check_partition("Integrate", &out.groups, out.relation.n_rows(), true)?;
        stats.integrate_repairs = out.repairs;
        obs.counter("integrate.repairs").add(out.repairs as u64);
        let close = int_span.end_profiled();
        stats.t_integrate = close.dur;
        note_alloc(&mut stats, &close, |p| &mut p.integrate);

        debug_assert!(is_k_anonymous(&out.relation, self.config.k));
        debug_assert!(set.satisfied_by(&out.relation));
        debug_assert!(
            self.config.diversity_model().is_none_or(|m| m.holds(&out.relation)),
            "enforced diversity model must audit clean on the published table"
        );
        run_span.set_attr("stars", out.relation.star_count());
        run_span.set_attr("outcome", "exact");
        stats.budget = budget.as_ref().map(|b| b.usage());
        stats.attribution = prov.attribution();
        let close = run_span.end_profiled();
        stats.t_total = close.dur;
        note_alloc(&mut stats, &close, |p| &mut p.total);
        board.set_phase(diva_obs::live::Phase::Done);
        Ok(DivaResult {
            relation: out.relation,
            groups: out.groups,
            source_rows: out.source_rows,
            stats,
            outcome: Outcome::Exact,
        })
    }

    /// Attempts to fold `rest` (fewer than `k` rows) into one of the
    /// `S_Σ` clusters such that the suppressed result still satisfies
    /// `Σ` and is `k`-anonymous. On success also returns the index of
    /// the host cluster that absorbed the residual (for provenance).
    fn fold_residual(
        &self,
        rel: &Relation,
        set: &ConstraintSet,
        s_sigma: &mut Vec<Vec<RowId>>,
        rest: &[RowId],
    ) -> Result<(Suppressed, usize), DivaError> {
        if s_sigma.is_empty() {
            return Err(DivaError::ResidualTooSmall { remaining: rest.len() });
        }
        for i in 0..s_sigma.len() {
            let mut trial = s_sigma.clone();
            trial[i].extend_from_slice(rest);
            trial[i].sort_unstable();
            let sup = suppress_clustering(rel, &trial);
            // Lower bounds must survive the fold (the host cluster may
            // stop retaining its target value); upper bounds are
            // checked too since folding can only lower counts.
            let ok = set.constraints().iter().all(|c| c.count_in(&sup.relation) >= c.lower)
                && is_k_anonymous(&sup.relation, self.config.k)
                && self.config.diversity_model().is_none_or(|m| m.holds(&sup.relation));
            if ok {
                *s_sigma = trial;
                return Ok((sup, i));
            }
        }
        Err(DivaError::ResidualTooSmall { remaining: rest.len() })
    }

    /// Last-resort degraded output with an *empty* prefix: every row
    /// is published with all QI values suppressed (one maximal
    /// QI-group, every constraint voided). Used by the portfolio when
    /// every member was lost to worker panics, so callers still get a
    /// well-formed k-anonymous relation instead of an error.
    pub(crate) fn degraded_fallback(
        &self,
        rel: &Relation,
        sigma: &[Constraint],
        reason: DegradeReason,
    ) -> Result<DivaResult, DivaError> {
        let obs = &self.config.obs;
        let run_span = obs
            .span("diva.run")
            .attr("rows", rel.n_rows())
            .attr("k", self.config.k)
            .attr("fallback", true);
        let set = ConstraintSet::bind(sigma, rel)?;
        let prov = &self.config.provenance;
        if prov.is_enabled() {
            prov.begin_run(
                self.config.k as u64,
                rel.n_rows() as u64,
                set.constraints().iter().map(|c| c.label()).collect(),
            );
        }
        let stats = RunStats { n_constraints: set.len(), ..RunStats::default() };
        self.degraded_result(rel, &set, Vec::new(), reason, stats, run_span, &None)
    }

    /// Builds the degraded-mode output (`DESIGN.md` §10) from the
    /// clustered-so-far prefix `partial`:
    ///
    /// 1. Non-voided prefix clusters are suppressed normally (uniform
    ///    QI values retained).
    /// 2. Any constraint left violating by the prefix has its
    ///    contributing clusters *voided* — all QI values suppressed —
    ///    until its count is within bounds or zero ("satisfied or
    ///    voided"; a degraded run never publishes a violating count).
    /// 3. Voided and residual rows merge into one fully-suppressed
    ///    block; if that block would have between 1 and k−1 rows, more
    ///    clusters are voided so it reaches k (each cluster has ≥ k
    ///    rows, so one always suffices).
    ///
    /// The result is k-anonymous and a refinement of the input, but
    /// not suppression-minimal, and the ℓ-diversity extension is not
    /// enforced. Every input row is still published exactly once.
    //
    // Takes the whole run context (stats, run span, budget) so every
    // exhaustion site can hand off mid-run state in one call; grouping
    // them into a carrier struct would just rename the argument list.
    #[allow(clippy::too_many_arguments)]
    fn degraded_result(
        &self,
        rel: &Relation,
        set: &ConstraintSet,
        partial: Vec<Vec<RowId>>,
        reason: DegradeReason,
        mut stats: RunStats,
        mut run_span: diva_obs::Span,
        budget: &Option<Arc<Budget>>,
    ) -> Result<DivaResult, DivaError> {
        let obs = &self.config.obs;
        obs.counter(&format!("budget.exhausted.{}", reason.kind())).incr();
        self.config.board.set_phase(diva_obs::live::Phase::Degrade);
        let mut span = obs
            .span("diva.degrade")
            .attr("reason", reason.kind())
            .attr("prefix_clusters", partial.len());

        // A prefix cluster contributes to a constraint iff *every* row
        // is a target: the cluster is then uniform on the target
        // columns, so suppression retains the target values for all of
        // its rows. Any mixed cluster gets those columns starred and
        // contributes zero.
        let n_groups = partial.len();
        let contrib: Vec<Vec<usize>> = set
            .constraints()
            .iter()
            .map(|c| {
                partial
                    .iter()
                    .map(|g| {
                        if !g.is_empty() && g.iter().all(|&r| c.is_target(r)) {
                            g.len()
                        } else {
                            0
                        }
                    })
                    .collect()
            })
            .collect();
        let mut covered = vec![false; rel.n_rows()];
        for c in &partial {
            for &r in c {
                covered[r] = true;
            }
        }
        let residual: Vec<RowId> = (0..rel.n_rows()).filter(|&r| !covered[r]).collect();

        // Voiding fixpoint. Voiding only ever lowers counts, and each
        // pass either voids a cluster or terminates, so this is at most
        // |partial| passes. `void_cause` remembers, per voided cluster,
        // which decision voided it (for the provenance records).
        let mut voided = vec![false; n_groups];
        let mut void_cause: Vec<Option<Cause>> = vec![None; n_groups];
        loop {
            let mut acted = false;
            for (ci, c) in set.constraints().iter().enumerate() {
                let count = |voided: &[bool]| -> usize {
                    (0..n_groups).filter(|&g| !voided[g]).map(|g| contrib[ci][g]).sum()
                };
                // Over the upper bound: void contributors (last first,
                // keeping earlier — typically larger-priority — ones)
                // until within bounds.
                while count(&voided) > c.upper {
                    if let Some(g) = (0..n_groups).rev().find(|&g| !voided[g] && contrib[ci][g] > 0)
                    {
                        voided[g] = true;
                        void_cause[g] = Some(Cause::Voided { constraint: ci as u32 });
                        acted = true;
                    }
                }
                // Under the lower bound (but non-zero): the count is
                // unattainable, so void the constraint entirely.
                if (1..c.lower).contains(&count(&voided)) {
                    for g in (0..n_groups).filter(|&g| contrib[ci][g] > 0) {
                        if !voided[g] {
                            voided[g] = true;
                            void_cause[g] = Some(Cause::Voided { constraint: ci as u32 });
                            acted = true;
                        }
                    }
                }
            }
            if acted {
                continue;
            }
            // The fully-suppressed block must itself be a k-anonymous
            // QI-group: empty or at least k rows.
            let star_rows = residual.len()
                + (0..n_groups).filter(|&g| voided[g]).map(|g| partial[g].len()).sum::<usize>();
            if star_rows > 0 && star_rows < self.config.k {
                if let Some(g) = (0..n_groups).rev().find(|&g| !voided[g]) {
                    voided[g] = true;
                    void_cause[g] = Some(Cause::DegradeMerge { reason: "block_size" });
                    continue;
                }
            }
            break;
        }

        // Materialize: kept clusters suppressed normally, then one
        // fully-suppressed block for voided + residual rows.
        let arity = rel.schema().arity();
        let n_rows = rel.n_rows();
        let mut cols: Vec<Vec<u32>> = (0..arity).map(|_| Vec::with_capacity(n_rows)).collect();
        let mut groups: Vec<Vec<RowId>> = Vec::new();
        let mut source_rows: Vec<RowId> = Vec::with_capacity(n_rows);
        let prov = &self.config.provenance;
        for (g, cluster) in partial.iter().enumerate() {
            if voided[g] || cluster.is_empty() {
                continue;
            }
            let start = source_rows.len();
            let mut suppress_col = vec![false; arity];
            for &c in rel.schema().qi_cols() {
                let first = rel.code(cluster[0], c);
                suppress_col[c] = cluster.iter().any(|&r| rel.code(r, c) != first);
            }
            for &r in cluster {
                for c in 0..arity {
                    cols[c].push(if suppress_col[c] { STAR_CODE } else { rel.code(r, c) });
                }
                source_rows.push(r);
            }
            groups.push((start..source_rows.len()).collect());
            if prov.is_enabled() {
                // Kept clusters charge their stars round-robin to the
                // constraints they contribute to (DESIGN.md §16), same
                // rule as the exact path's Σ-clusters.
                let owners: Vec<u32> =
                    (0..set.len()).filter(|&ci| contrib[ci][g] > 0).map(|ci| ci as u32).collect();
                let gid = prov.group(
                    GroupOrigin::Sigma,
                    owners.clone(),
                    cluster.iter().map(|&r| r as u64).collect(),
                );
                let mut j = 0usize;
                for (c, &starred) in suppress_col.iter().enumerate() {
                    if !starred {
                        continue;
                    }
                    for &r in cluster {
                        let cause = if owners.is_empty() {
                            Cause::KAnonymity
                        } else {
                            Cause::Sigma { constraint: owners[j % owners.len()] }
                        };
                        prov.cell(r as u64, c as u32, gid, cause);
                        j += 1;
                    }
                }
            }
        }
        let star_src: Vec<RowId> = partial
            .iter()
            .enumerate()
            .filter(|&(g, _)| voided[g])
            .flat_map(|(_, c)| c.iter().copied())
            .chain(residual.iter().copied())
            .collect();
        if !star_src.is_empty() {
            let start = source_rows.len();
            for &r in &star_src {
                for (c, col) in cols.iter_mut().enumerate() {
                    col.push(if rel.schema().is_qi(c) { STAR_CODE } else { rel.code(r, c) });
                }
                source_rows.push(r);
            }
            groups.push((start..source_rows.len()).collect());
            if prov.is_enabled() {
                // Every QI cell of the star block is suppressed; each
                // row's cells carry the decision that sent it there —
                // the void that consumed its cluster, or a structural
                // degrade merge for residual rows.
                let gid = prov.group(
                    GroupOrigin::StarBlock,
                    Vec::new(),
                    star_src.iter().map(|&r| r as u64).collect(),
                );
                let causes = partial
                    .iter()
                    .enumerate()
                    .filter(|&(g, _)| voided[g])
                    .flat_map(|(g, c)| {
                        let cause = void_cause[g]
                            .clone()
                            .unwrap_or(Cause::DegradeMerge { reason: "block_size" });
                        std::iter::repeat_n(cause, c.len())
                    })
                    .chain(residual.iter().map(|_| Cause::DegradeMerge { reason: "residual" }));
                for (&r, cause) in star_src.iter().zip(causes) {
                    for &c in rel.schema().qi_cols() {
                        prov.cell(r as u64, c as u32, gid, cause.clone());
                    }
                }
            }
        }
        let relation =
            Relation::from_parts(std::sync::Arc::clone(rel.schema()), rel.dicts().to_vec(), cols);
        #[cfg(feature = "strict-invariants")]
        check_partition("Degrade", &groups, relation.n_rows(), true)?;
        debug_assert!(rel.n_rows() < self.config.k || is_k_anonymous(&relation, self.config.k));
        debug_assert!(set.constraints().iter().all(|c| {
            let n = c.count_in(&relation);
            n == 0 || (c.lower..=c.upper).contains(&n)
        }));

        stats.sigma_rows = source_rows.len() - star_src.len();
        // Per-constraint verdicts for the live board: non-zero final
        // count = satisfied (within bounds by the fixpoint), zero =
        // voided.
        let mut n_sat = 0u64;
        let mut n_voided_constraints = 0u64;
        for (ci, _) in set.constraints().iter().enumerate() {
            let count: usize = (0..n_groups).filter(|&g| !voided[g]).map(|g| contrib[ci][g]).sum();
            if count > 0 {
                n_sat += 1;
            } else {
                n_voided_constraints += 1;
            }
        }
        self.config.board.add_satisfied(n_sat);
        self.config.board.add_voided(n_voided_constraints);
        let n_voided = voided.iter().filter(|&&v| v).count();
        span.set_attr("voided_clusters", n_voided);
        span.set_attr("star_rows", star_src.len());
        note_alloc(&mut stats, &span.end_profiled(), |p| &mut p.degrade);
        run_span.set_attr("stars", relation.star_count());
        run_span.set_attr("outcome", "degraded");
        run_span.set_attr("degrade_reason", reason.kind());
        stats.budget = budget.as_ref().map(|b| b.usage());
        stats.attribution = prov.attribution();
        let close = run_span.end_profiled();
        stats.t_total = close.dur;
        note_alloc(&mut stats, &close, |p| &mut p.total);
        self.config.board.set_phase(diva_obs::live::Phase::Done);
        Ok(DivaResult {
            relation,
            groups,
            source_rows,
            stats,
            outcome: Outcome::Degraded { reason },
        })
    }
}

/// Records provenance for one suppressed clustering: a group record
/// per cluster plus a cell record per starred QI value. Starred cells
/// are enumerated deterministically — suppressed columns ascending,
/// rows in cluster order — and the j-th cell is charged to
/// `owners[j % owners.len()]` (the tie-splitting rule of DESIGN.md
/// §16); clusters with no owning constraint charge plain k-anonymity.
/// Returns the group ids, parallel to `clusters`.
fn record_suppressed_groups(
    prov: &Provenance,
    sup: &Suppressed,
    clusters: &[Vec<RowId>],
    owners_of: impl Fn(usize) -> Vec<u32>,
    origin_of: impl Fn(usize) -> GroupOrigin,
) -> Vec<u64> {
    let mut gids = Vec::with_capacity(clusters.len());
    for (ci, cluster) in clusters.iter().enumerate() {
        let owners = owners_of(ci);
        let gid =
            prov.group(origin_of(ci), owners.clone(), cluster.iter().map(|&r| r as u64).collect());
        gids.push(gid);
        // Within a suppressed group every row shares one star pattern,
        // so the group's first output row names the starred columns.
        let Some(&first) = sup.groups.get(ci).and_then(|g| g.first()) else {
            continue;
        };
        let mut j = 0usize;
        for &col in sup.relation.schema().qi_cols() {
            if sup.relation.code(first, col) != STAR_CODE {
                continue;
            }
            for &r in cluster {
                let cause = if owners.is_empty() {
                    Cause::KAnonymity
                } else {
                    Cause::Sigma { constraint: owners[j % owners.len()] }
                };
                prov.cell(r as u64, col as u32, gid, cause);
                j += 1;
            }
        }
    }
    gids
}

/// Shorthand for [`DivaError::InvariantViolated`] at a pipeline phase.
#[cfg(feature = "strict-invariants")]
fn inv(phase: &str, detail: String) -> DivaError {
    DivaError::InvariantViolated { phase: phase.into(), detail }
}

/// Phase-boundary invariant: `groups` reference rows `< n_rows` and
/// are pairwise disjoint; with `exhaustive` they also cover every row.
#[cfg(feature = "strict-invariants")]
fn check_partition(
    phase: &str,
    groups: &[Vec<RowId>],
    n_rows: usize,
    exhaustive: bool,
) -> Result<(), DivaError> {
    let mut seen = vec![false; n_rows];
    for (gi, group) in groups.iter().enumerate() {
        for &r in group {
            if r >= n_rows {
                return Err(inv(phase, format!("group {gi} references row {r} >= {n_rows}")));
            }
            if seen[r] {
                return Err(inv(phase, format!("row {r} appears in two groups")));
            }
            seen[r] = true;
        }
    }
    if exhaustive {
        if let Some(r) = seen.iter().position(|&s| !s) {
            return Err(inv(phase, format!("row {r} is not covered by any group")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    use diva_relation::fixtures::paper_table1;
    use diva_relation::suppress::is_refinement;

    fn example_sigma() -> Vec<Constraint> {
        vec![
            Constraint::single("ETH", "Asian", 2, 5),
            Constraint::single("ETH", "African", 1, 3),
            Constraint::single("CTY", "Vancouver", 2, 4),
        ]
    }

    #[test]
    fn paper_example_end_to_end() {
        let r = paper_table1();
        for strategy in Strategy::all() {
            let diva = Diva::new(DivaConfig::with_k(2).strategy(strategy));
            let out = diva.run(&r, &example_sigma()).unwrap_or_else(|e| {
                panic!("{strategy}: {e}");
            });
            assert_eq!(out.relation.n_rows(), 10, "{strategy}: all tuples published");
            assert!(is_k_anonymous(&out.relation, 2), "{strategy}: 2-anonymous");
            let set = ConstraintSet::bind(&example_sigma(), &out.relation).unwrap();
            assert!(set.satisfied_by(&out.relation), "{strategy}: R' |= Σ");
            assert!(is_refinement(&r, &out.relation, &out.source_rows), "{strategy}: R ⊑ R'");
            // Shared clusters may serve two constraints at once, so the
            // minimum coverage is 4 rows (σ2 needs 2 Africans, and a
            // shared Asian/Vancouver pair can serve both σ1 and σ3).
            assert!(out.stats.sigma_rows >= 4, "{strategy}: S_Σ covers the constraint rows");
        }
    }

    #[test]
    fn output_matches_paper_table3_quality() {
        // The paper's Table 3 output suppresses 22 QI cells. Our k=2
        // run should be in the same information-loss ballpark (the
        // clustering is not unique).
        let r = paper_table1();
        let diva = Diva::new(DivaConfig::with_k(2).strategy(Strategy::MinChoice));
        let out = diva.run(&r, &example_sigma()).unwrap();
        let stars = out.relation.star_count();
        assert!(stars <= 30, "suppression {stars} far above Table 3's 22");
    }

    #[test]
    fn empty_sigma_reduces_to_plain_anonymization() {
        let r = paper_table1();
        let diva = Diva::new(DivaConfig::with_k(3));
        let out = diva.run(&r, &[]).unwrap();
        assert_eq!(out.relation.n_rows(), 10);
        assert!(is_k_anonymous(&out.relation, 3));
        assert_eq!(out.stats.sigma_rows, 0);
        assert_eq!(out.stats.n_constraints, 0);
    }

    #[test]
    fn unsatisfiable_sigma_errors() {
        let r = paper_table1();
        let diva = Diva::new(DivaConfig::with_k(2));
        let err = diva.run(&r, &[Constraint::single("ETH", "Asian", 4, 10)]).unwrap_err();
        assert!(matches!(err, DivaError::NoDiverseClustering { .. }), "{err}");
    }

    #[test]
    fn invalid_k_errors() {
        let r = paper_table1();
        let diva = Diva::new(DivaConfig::with_k(0));
        assert_eq!(diva.run(&r, &[]).unwrap_err(), DivaError::InvalidK);
    }

    #[test]
    fn invalid_constraint_errors() {
        let r = paper_table1();
        let diva = Diva::new(DivaConfig::with_k(2));
        let err = diva.run(&r, &[Constraint::single("DIAG", "Seizure", 1, 2)]).unwrap_err();
        assert!(matches!(err, DivaError::Constraint(_)));
    }

    #[test]
    fn residual_folding_keeps_validity() {
        // k=3 with constraints covering 9 of 10 tuples leaves a single
        // residual tuple that must be folded into a cluster.
        let r = paper_table1();
        let sigma = vec![
            Constraint::single("GEN", "Female", 3, 5),
            Constraint::single("GEN", "Male", 3, 5),
        ];
        let diva = Diva::new(DivaConfig::with_k(3).strategy(Strategy::MinChoice));
        match diva.run(&r, &sigma) {
            Ok(out) => {
                assert_eq!(out.relation.n_rows(), 10);
                assert!(is_k_anonymous(&out.relation, 3));
                let set = ConstraintSet::bind(&sigma, &out.relation).unwrap();
                assert!(set.satisfied_by(&out.relation));
            }
            Err(DivaError::ResidualTooSmall { .. }) => {
                // Acceptable only if folding is genuinely impossible;
                // with Female/Male windows of width 2 it should not be.
                panic!("folding should succeed for this instance");
            }
            Err(e) => panic!("{e}"),
        }
    }

    #[test]
    fn custom_anonymizer_is_used() {
        let r = diva_datagen::medical(200, 3);
        let diva = Diva::with_anonymizer(DivaConfig::with_k(4), Box::new(diva_anonymize::Mondrian));
        let out = diva.run(&r, &[]).unwrap();
        assert!(is_k_anonymous(&out.relation, 4));
    }

    #[test]
    fn obs_enabled_records_phase_spans_and_counters() {
        let r = paper_table1();
        let obs = diva_obs::Obs::enabled();
        let diva = Diva::new(DivaConfig::with_k(2).obs(obs.clone()));
        let out = diva.run(&r, &example_sigma()).unwrap();
        let snap = obs.snapshot();
        let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
        for required in [
            "diva.run",
            "diva.clustering",
            "diva.suppress",
            "diva.anonymize",
            "diva.integrate",
            "graph.build",
            "coloring.solve",
        ] {
            assert!(names.contains(&required), "{required} missing from {names:?}");
        }
        // RunStats timings are literally the span durations.
        let span_dur = |n: &str| snap.spans.iter().find(|s| s.name == n).map(|s| s.dur_us);
        assert_eq!(span_dur("diva.run"), Some(out.stats.t_total.as_micros() as u64));
        assert_eq!(span_dur("diva.clustering"), Some(out.stats.t_clustering.as_micros() as u64));
        // Phase spans nest under diva.run.
        let run_id = snap.spans.iter().find(|s| s.name == "diva.run").map(|s| s.id);
        for phase in ["diva.clustering", "diva.suppress", "diva.anonymize", "diva.integrate"] {
            let parent = snap.spans.iter().find(|s| s.name == phase).and_then(|s| s.parent);
            assert_eq!(parent, run_id, "{phase} must nest under diva.run");
        }
        // Per-strategy search counters and generation counters flushed.
        assert!(snap.counter("coloring.MaxFanOut.node_selections").unwrap_or(0) > 0);
        assert_eq!(
            snap.counter("candidates.generated"),
            Some(out.stats.candidates_generated as u64)
        );
        assert!(snap.histograms.iter().any(|(n, h)| n == "cluster.size" && h.count > 0));
    }

    #[test]
    fn obs_records_component_spans_for_multi_component_runs() {
        let r = paper_table1();
        // African {4,5} + Vancouver {5,6,7,9} chain into one
        // component; Calgary {0,1,2} is an island — two components.
        let sigma = vec![
            Constraint::single("ETH", "African", 2, 3),
            Constraint::single("CTY", "Vancouver", 2, 4),
            Constraint::single("CTY", "Calgary", 2, 3),
        ];
        let obs = diva_obs::Obs::enabled();
        Diva::new(DivaConfig::with_k(2).obs(obs.clone())).run(&r, &sigma).unwrap();
        let snap = obs.snapshot();
        // Gauge + size histogram from the graph build.
        let gauge = snap.gauges.iter().find(|(n, _)| n == "graph.components").map(|(_, v)| *v);
        assert_eq!(gauge, Some(2), "graph.components gauge");
        assert!(
            snap.histograms.iter().any(|(n, h)| n == "graph.component_size" && h.count == 2),
            "graph.component_size histogram"
        );
        // `diva.components` nests under `diva.clustering` and has one
        // `diva.component` child per component.
        let parent_of = |name: &str| snap.spans.iter().find(|s| s.name == name);
        let components_span = parent_of("diva.components").expect("diva.components span");
        let clustering_id = parent_of("diva.clustering").map(|s| s.id);
        assert_eq!(components_span.parent, clustering_id);
        let children: Vec<_> = snap.spans.iter().filter(|s| s.name == "diva.component").collect();
        assert_eq!(children.len(), 2, "one span per component");
        for c in &children {
            assert_eq!(c.parent, Some(components_span.id));
        }
        // Each component's search nests under its component span.
        let solves: Vec<_> = snap.spans.iter().filter(|s| s.name == "coloring.solve").collect();
        assert_eq!(solves.len(), 2, "one search per component");
        for s in &solves {
            assert!(
                children.iter().any(|c| Some(c.id) == s.parent),
                "coloring.solve must nest under a diva.component span"
            );
        }
    }

    #[test]
    fn disabled_obs_output_matches_enabled_byte_for_byte() {
        let r = paper_table1();
        let run = |obs: diva_obs::Obs| {
            let diva = Diva::new(DivaConfig::with_k(2).obs(obs));
            let out = diva.run(&r, &example_sigma()).unwrap();
            (format!("{:?}", out.relation), out.groups, out.source_rows)
        };
        assert_eq!(run(diva_obs::Obs::disabled()), run(diva_obs::Obs::enabled()));
    }

    #[test]
    fn disabled_provenance_output_matches_enabled_byte_for_byte() {
        let r = paper_table1();
        let run = |prov: diva_obs::Provenance| {
            let diva = Diva::new(DivaConfig::with_k(2).provenance(prov));
            let out = diva.run(&r, &example_sigma()).unwrap();
            (format!("{:?}", out.relation), out.groups, out.source_rows)
        };
        assert_eq!(run(diva_obs::Provenance::disabled()), run(diva_obs::Provenance::enabled()));
    }

    #[test]
    fn provenance_attribution_sums_to_star_count() {
        let r = paper_table1();
        let prov = diva_obs::Provenance::enabled();
        let diva = Diva::new(DivaConfig::with_k(2).provenance(prov.clone()));
        let out = diva.run(&r, &example_sigma()).unwrap();
        let attr = out.stats.attribution.clone().expect("enabled recorder populates RunStats");
        assert_eq!(attr.total(), out.relation.star_count() as u64);
        let log = prov.snapshot().unwrap();
        diva_obs::provenance::validate_log(&log).expect("log passes integrity validation");
        assert_eq!(log.cells.len() as u64, attr.total(), "one record per starred cell");
        assert_eq!(log.labels.len(), 3);
    }

    #[test]
    fn provenance_disabled_leaves_stats_attribution_none() {
        let r = paper_table1();
        let out = Diva::new(DivaConfig::with_k(2)).run(&r, &example_sigma()).unwrap();
        assert!(out.stats.attribution.is_none());
    }

    #[test]
    fn degraded_run_provenance_covers_every_star() {
        let r = diva_datagen::medical(300, 5);
        let sigma = vec![Constraint::single("ETH", "Asian", 5, 300)];
        let prov = diva_obs::Provenance::enabled();
        let config = DivaConfig::with_k(4).provenance(prov.clone()).budget(crate::BudgetSpec {
            deadline: Some(Duration::ZERO),
            ..crate::BudgetSpec::default()
        });
        let out = Diva::new(config).run(&r, &sigma).unwrap();
        assert!(matches!(out.outcome, Outcome::Degraded { .. }));
        let attr = out.stats.attribution.clone().unwrap();
        assert_eq!(attr.total(), out.relation.star_count() as u64);
        diva_obs::provenance::validate_log(&prov.snapshot().unwrap()).unwrap();
    }

    #[test]
    fn stats_timings_are_populated() {
        let r = paper_table1();
        let diva = Diva::new(DivaConfig::with_k(2));
        let out = diva.run(&r, &example_sigma()).unwrap();
        assert!(out.stats.t_total >= out.stats.t_clustering);
        assert!(out.stats.candidates_generated > 0);
        assert_eq!(out.stats.n_constraints, 3);
    }

    #[test]
    fn l_diversity_extension_holds() {
        let r = diva_datagen::medical(600, 13);
        let sigma = vec![Constraint::single("ETH", "Caucasian", 20, 600)];
        let l = 3;
        let diva = Diva::new(DivaConfig::with_k(5).l_diversity(l));
        let out = diva.run(&r, &sigma).expect("satisfiable with 8 diagnoses");
        assert!(is_k_anonymous(&out.relation, 5));
        assert!(diva_anonymize::is_l_diverse(&out.relation, l));
        let set = ConstraintSet::bind(&sigma, &out.relation).unwrap();
        assert!(set.satisfied_by(&out.relation));
    }

    #[test]
    fn entropy_and_recursive_variants_hold_end_to_end() {
        let r = diva_datagen::medical(600, 13);
        let sigma = vec![Constraint::single("ETH", "Caucasian", 20, 600)];
        for variant in
            [crate::config::LVariant::Entropy, crate::config::LVariant::Recursive { c: 1.5 }]
        {
            let config = DivaConfig::with_k(5).l_diversity(3).l_variant(variant);
            let model = config.diversity_model().expect("non-trivial");
            let out = Diva::new(config).run(&r, &sigma).expect("satisfiable with 8 diagnoses");
            assert!(is_k_anonymous(&out.relation, 5));
            assert!(model.holds(&out.relation), "{model} must hold on the published table");
        }
    }

    #[test]
    fn recursive_variant_validation() {
        let config = DivaConfig::with_k(2)
            .l_diversity(2)
            .l_variant(crate::config::LVariant::Recursive { c: 0.0 });
        assert!(config.validate().is_err());
        let err = Diva::new(config).run(&paper_table1(), &[]).unwrap_err();
        assert!(matches!(err, DivaError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn l_diversity_infeasible_errors() {
        // A relation whose sensitive column has a single value can
        // never be 2-diverse.
        let mut b = diva_relation::RelationBuilder::new(diva_relation::fixtures::medical_schema());
        for i in 0..20 {
            b.push_row(&[
                if i % 2 == 0 { "Female" } else { "Male" },
                "Asian",
                "30",
                "BC",
                "Vancouver",
                "Influenza", // single sensitive value everywhere
            ]);
        }
        let r = b.finish();
        let diva = Diva::new(DivaConfig::with_k(2).l_diversity(2));
        let err = diva.run(&r, &[]).unwrap_err();
        assert!(matches!(err, DivaError::PrivacyInfeasible { .. }), "{err}");
    }

    #[test]
    fn groups_partition_the_output() {
        let r = paper_table1();
        let diva = Diva::new(DivaConfig::with_k(2));
        let out = diva.run(&r, &example_sigma()).unwrap();
        let mut seen = vec![false; out.relation.n_rows()];
        for g in &out.groups {
            for &row in g {
                assert!(!seen[row], "row {row} in two groups");
                seen[row] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn source_rows_cover_input_exactly_once() {
        let r = paper_table1();
        let diva = Diva::new(DivaConfig::with_k(2));
        let out = diva.run(&r, &example_sigma()).unwrap();
        let mut sorted = out.source_rows.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
