//! The `Integrate` step (Figure 1): unions `R_Σ` and `R_k` and repairs
//! upper-bound violations introduced by `R_k`.
//!
//! `R_Σ` satisfies every constraint on its own and lower bounds can
//! only *gain* occurrences from `R_k`, so the only possible violations
//! in `R_Σ ∪ R_k` are upper bounds (§3.1). A violation is repaired by
//! suppressing the constraint's target attribute(s) in whole QI-groups
//! of `R_k` — whole groups so that the result stays a union of
//! QI-uniform blocks, i.e. `k`-anonymity is preserved (suppression
//! only ever coarsens groups). Groups are chosen greedily to minimize
//! the suppression added per occurrence removed.

use diva_constraints::ConstraintSet;
use diva_obs::provenance::{Cause, Provenance};
use diva_relation::suppress::Suppressed;
use diva_relation::{Relation, RowId};

use crate::error::DivaError;

/// The integrated result.
#[derive(Debug)]
pub struct Integrated {
    /// `R′ = R_Σ ∪ R_k` after repairs.
    pub relation: Relation,
    /// QI-groups: the `S_Σ` clusters first, then `R_k`'s groups.
    pub groups: Vec<Vec<RowId>>,
    /// Maps output rows to rows of the original relation.
    pub source_rows: Vec<RowId>,
    /// Number of group-suppression repairs applied.
    pub repairs: usize,
}

/// Unions `r_sigma` and `r_k` and repairs upper-bound violations.
///
/// `set` must be bound against the *original* relation (the codes are
/// shared because all derived relations share dictionaries).
pub fn integrate(
    r_sigma: &Suppressed,
    r_k: Option<&Suppressed>,
    set: &ConstraintSet,
) -> Result<Integrated, DivaError> {
    integrate_traced(r_sigma, r_k, set, &Provenance::disabled(), &[])
}

/// [`integrate`] with decision provenance: each repair-suppressed cell
/// is recorded as `Repair{constraint, round}` against the repaired
/// `R_k` group. `k_group_ids` are the provenance group ids parallel to
/// `r_k.groups` (empty when the recorder is disabled). Repairs never
/// double-record a cell: a group only matches a constraint while its
/// rows still retain the target values, and the repair removes them.
pub fn integrate_traced(
    r_sigma: &Suppressed,
    r_k: Option<&Suppressed>,
    set: &ConstraintSet,
    prov: &Provenance,
    k_group_ids: &[u64],
) -> Result<Integrated, DivaError> {
    let mut relation = r_sigma.relation.clone();
    let mut groups = r_sigma.groups.clone();
    let mut source_rows = r_sigma.source_rows.clone();
    let sigma_rows = relation.n_rows();
    let mut k_groups: Vec<Vec<RowId>> = Vec::new();
    if let Some(rk) = r_k {
        relation.append(&rk.relation);
        for g in &rk.groups {
            let shifted: Vec<RowId> = g.iter().map(|r| r + sigma_rows).collect();
            k_groups.push(shifted.clone());
            groups.push(shifted);
        }
        source_rows.extend_from_slice(&rk.source_rows);
    }

    let mut repairs = 0usize;
    loop {
        // Find the violated constraint with the largest overshoot.
        let mut worst: Option<(usize, usize)> = None; // (constraint, overshoot)
        for (i, c) in set.constraints().iter().enumerate() {
            let count = c.count_in(&relation);
            if count > c.upper {
                let overshoot = count - c.upper;
                if worst.is_none_or(|(_, o)| overshoot > o) {
                    worst = Some((i, overshoot));
                }
            }
        }
        let Some((ci, overshoot)) = worst else { break };
        let c = &set.constraints()[ci];

        // Candidate repair groups: R_k groups that uniformly retain the
        // target values (their first row matches on every target cell —
        // rows within a group are QI-identical by construction).
        let mut matching: Vec<usize> = (0..k_groups.len())
            .filter(|&gi| {
                let g = &k_groups[gi];
                !g.is_empty()
                    && c.cols
                        .iter()
                        .zip(&c.codes)
                        .all(|(&col, &code)| relation.code(g[0], col) == code)
            })
            .collect();
        if matching.is_empty() {
            return Err(DivaError::IntegrateFailed {
                constraint: c.label(),
                count: c.upper + overshoot,
                upper: c.upper,
            });
        }
        // Prefer the largest group that fits inside the overshoot
        // (removes the most occurrences without over-suppressing);
        // otherwise the smallest group that covers it.
        matching.sort_by_key(|&gi| k_groups[gi].len());
        let pick = matching
            .iter()
            .rev()
            .find(|&&gi| k_groups[gi].len() <= overshoot)
            .copied()
            .unwrap_or(matching[0]);
        let record = prov.is_enabled() && pick < k_group_ids.len();
        for &row in &k_groups[pick] {
            for &col in &c.cols {
                relation.suppress_cell(row, col);
                if record {
                    prov.cell(
                        source_rows[row] as u64,
                        col as u32,
                        k_group_ids[pick],
                        Cause::Repair { constraint: ci as u32, round: (repairs + 1) as u32 },
                    );
                }
            }
        }
        repairs += 1;
    }

    Ok(Integrated { relation, groups, source_rows, repairs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_constraints::{Constraint, ConstraintSet};
    use diva_relation::fixtures::paper_table1;
    use diva_relation::is_k_anonymous;
    use diva_relation::suppress::suppress_clustering;

    #[test]
    fn paper_example_integration_needs_no_repair() {
        // Example 3.1: S_Σ covers rows 4..10; R_k anonymizes rows 0..4.
        let r = paper_table1();
        let sigma = vec![
            Constraint::single("ETH", "Asian", 2, 5),
            Constraint::single("ETH", "African", 1, 3),
            Constraint::single("CTY", "Vancouver", 2, 4),
        ];
        let set = ConstraintSet::bind(&sigma, &r).unwrap();
        let r_sigma = suppress_clustering(&r, &[vec![8, 9], vec![4, 5], vec![6, 7]]);
        let r_k = suppress_clustering(&r, &[vec![0, 1], vec![2, 3]]);
        let out = integrate(&r_sigma, Some(&r_k), &set).unwrap();
        assert_eq!(out.repairs, 0);
        assert_eq!(out.relation.n_rows(), 10);
        assert_eq!(out.groups.len(), 5);
        assert!(set.satisfied_by(&out.relation));
        assert!(is_k_anonymous(&out.relation, 2));
        // Row provenance: Σ rows then k rows.
        assert_eq!(out.source_rows, vec![8, 9, 4, 5, 6, 7, 0, 1, 2, 3]);
    }

    #[test]
    fn upper_bound_violation_is_repaired() {
        // Σ caps Caucasians at 2; R_Σ retains 0, R_k retains 4 (two
        // uniform Caucasian groups of two) → repair must suppress.
        let r = paper_table1();
        let sigma = vec![Constraint::single("ETH", "Caucasian", 0, 2)];
        let set = ConstraintSet::bind(&sigma, &r).unwrap();
        // R_Σ from an unrelated clustering (Asians, ETH retained).
        let r_sigma = suppress_clustering(&r, &[vec![7, 8]]);
        // R_k groups: {t1,t2} Caucasian uniform, {t3,t4} Caucasian
        // uniform, {t5,t6} African.
        let r_k = suppress_clustering(&r, &[vec![0, 1], vec![2, 3], vec![4, 5]]);
        let before = ConstraintSet::bind(&sigma, &r).unwrap();
        {
            // Sanity: unrepaired union violates the cap.
            let mut u = r_sigma.relation.clone();
            u.append(&r_k.relation);
            assert!(!before.satisfied_by(&u));
        }
        let out = integrate(&r_sigma, Some(&r_k), &set).unwrap();
        assert!(set.satisfied_by(&out.relation));
        assert!(out.repairs >= 1);
        // Exactly one group of two needed suppression (4 − 2 = 2).
        assert_eq!(out.repairs, 1);
    }

    #[test]
    fn unrepairable_when_sigma_pins_occurrences() {
        // R_Σ itself retains 3 Asians but the constraint allows only 2:
        // integrate cannot touch R_Σ, so it must fail.
        let r = paper_table1();
        let sigma = vec![Constraint::single("ETH", "Asian", 0, 2)];
        let set = ConstraintSet::bind(&sigma, &r).unwrap();
        let r_sigma = suppress_clustering(&r, &[vec![7, 8, 9]]); // all Asians, ETH uniform
        let err = integrate(&r_sigma, None, &set).unwrap_err();
        assert!(matches!(err, DivaError::IntegrateFailed { .. }), "{err}");
    }

    #[test]
    fn no_rk_and_satisfied_passes_through() {
        let r = paper_table1();
        let sigma = vec![Constraint::single("ETH", "Asian", 2, 5)];
        let set = ConstraintSet::bind(&sigma, &r).unwrap();
        let r_sigma = suppress_clustering(&r, &[vec![7, 8]]);
        let out = integrate(&r_sigma, None, &set).unwrap();
        assert_eq!(out.repairs, 0);
        assert_eq!(out.relation.n_rows(), 2);
    }

    #[test]
    fn repair_prefers_small_enough_groups() {
        // Cap Males at 3. R_k has Male groups of sizes 2 and 3 (GEN
        // uniform). Retained Males = 5, overshoot 2 → the group of 2
        // is the perfect fit; repairs = 1 and the group of 3 survives.
        let r = paper_table1();
        let sigma = vec![Constraint::single("GEN", "Male", 0, 3)];
        let set = ConstraintSet::bind(&sigma, &r).unwrap();
        let r_sigma = suppress_clustering(&r, &[vec![7, 8]]); // Females
                                                              // Males: rows 2,3,4,5,6. Groups {2,3} and {4,5,6}.
        let r_k = suppress_clustering(&r, &[vec![2, 3], vec![4, 5, 6]]);
        let out = integrate(&r_sigma, Some(&r_k), &set).unwrap();
        assert_eq!(out.repairs, 1);
        let gen = r.schema().col_of("GEN");
        let male = r.dict(gen).code("Male").unwrap();
        assert_eq!(out.relation.count_matching(&[gen], &[male]), 3);
        assert!(set.satisfied_by(&out.relation));
    }
}
