//! Behavioural tests of the colouring search: repair, forward
//! checking, budget accounting, strategy ordering, and ℓ-diversity
//! candidate filtering — exercised through the public API.

use diva_constraints::{Constraint, ConstraintSet};
use diva_core::{CandidateSet, Diva, DivaConfig, DivaError, Strategy};
use diva_relation::fixtures::paper_table1;
use diva_relation::{is_k_anonymous, Attribute, RelationBuilder, Schema};
use std::sync::Arc;

/// A relation engineered so that one constraint monopolizes a block of
/// rows and a second must route around it: `A = a` rows also all have
/// `B = b0`, while extra `B = b0` rows exist elsewhere.
fn contended_relation() -> diva_relation::Relation {
    let schema = Arc::new(Schema::new(vec![
        Attribute::quasi("A"),
        Attribute::quasi("B"),
        Attribute::quasi("C"),
        Attribute::sensitive("S"),
    ]));
    let mut b = RelationBuilder::new(schema);
    // 20 rows with A=a, B=b0 (C varies).
    for i in 0..20 {
        b.push_row(&["a".into(), "b0".into(), format!("c{}", i % 4), format!("s{}", i % 3)]);
    }
    // 30 rows with A=x, B=b0.
    for i in 0..30 {
        b.push_row(&["x".into(), "b0".into(), format!("c{}", i % 4), format!("s{}", i % 3)]);
    }
    // 30 filler rows.
    for i in 0..30 {
        b.push_row(&["y".into(), "b1".into(), format!("c{}", i % 4), format!("s{}", i % 3)]);
    }
    b.finish()
}

#[test]
fn repair_routes_around_monopolized_rows() {
    let rel = contended_relation();
    // σ1 takes *all* A=a rows (the paper's most constrained shape).
    // σ2 needs 30 B=b0 rows — the literal low-offset windows of its
    // similarity order overlap σ1's rows heavily, so without repair
    // the capped candidate list can dead-end.
    let sigma = vec![Constraint::single("A", "a", 20, 20), Constraint::single("B", "b0", 30, 40)];
    let k = 5;
    for enable_repair in [true, false] {
        let config =
            DivaConfig { k, strategy: Strategy::MinChoice, enable_repair, ..DivaConfig::default() };
        match Diva::new(config).run(&rel, &sigma) {
            Ok(out) => {
                // Any successful run must hand back a valid relation.
                let set = ConstraintSet::bind(&sigma, &out.relation).unwrap();
                assert!(set.satisfied_by(&out.relation));
                assert!(is_k_anonymous(&out.relation, k));
            }
            Err(e) => {
                // Without repair the capped window space may dead-end;
                // with repair this instance must be solved.
                assert!(!enable_repair, "repair should solve this instance: {e}");
            }
        }
    }
}

#[test]
fn forward_checking_strategies_prove_unsat_quickly() {
    let rel = contended_relation();
    // Jointly impossible: σ1 wants all 20 A=a rows retained as `a`;
    // σ2 wants ≥ 45 B=b0 rows — only 50 exist and 20 are consumed by
    // σ1's clusters (which retain B=b0 too, but cluster-disjointness
    // still forbids reuse at the required total: 20 shared + 30 free
    // = 50 ≥ 45, so sharing could work... tighten to 51 to be truly
    // impossible).
    let sigma = vec![Constraint::single("A", "a", 20, 20), Constraint::single("B", "b0", 51, 60)];
    for strategy in [Strategy::MinChoice, Strategy::MaxFanOut] {
        let config = DivaConfig { k: 5, strategy, ..DivaConfig::default() };
        let err = Diva::new(config).run(&rel, &sigma).unwrap_err();
        assert!(matches!(err, DivaError::NoDiverseClustering { .. }), "{strategy}: {err}");
    }
}

#[test]
fn shared_cluster_solutions_survive_forward_checking() {
    // Two identical-target constraints where the target has exactly k
    // rows: both must share one cluster; naive free-row forward checks
    // would prune this.
    let rel = contended_relation();
    let sigma = vec![Constraint::single("A", "a", 20, 20), Constraint::single("A", "a", 10, 20)];
    let config = DivaConfig { k: 5, strategy: Strategy::MaxFanOut, ..DivaConfig::default() };
    let out = Diva::new(config).run(&rel, &sigma).expect("sharing works");
    let set = ConstraintSet::bind(&sigma, &out.relation).unwrap();
    assert!(set.satisfied_by(&out.relation));
}

#[test]
fn candidate_repair_is_privacy_aware() {
    // With l_diversity = 3 every cluster (including repaired ones)
    // must carry 3 distinct sensitive values; the contended relation
    // cycles s0..s2 so clusters of 5 usually qualify, and the final
    // output must be 3-diverse.
    let rel = contended_relation();
    let sigma = vec![Constraint::single("B", "b0", 25, 50)];
    let config = DivaConfig { k: 5, l_diversity: 3, ..DivaConfig::default() };
    let out = Diva::new(config).run(&rel, &sigma).expect("diverse sensitives available");
    assert!(diva_anonymize::is_l_diverse(&out.relation, 3));
    let set = ConstraintSet::bind(&sigma, &out.relation).unwrap();
    assert!(set.satisfied_by(&out.relation));
}

#[test]
fn budget_is_respected_exactly() {
    let rel = paper_table1();
    // Unsatisfiable but with many candidate combinations.
    let sigma = vec![
        Constraint::single("CTY", "Vancouver", 4, 4),
        Constraint::single("ETH", "African", 2, 3),
        Constraint::single("GEN", "Female", 5, 5),
        Constraint::single("ETH", "Asian", 3, 3),
    ];
    let config = DivaConfig {
        k: 2,
        strategy: Strategy::Basic,
        backtrack_limit: Some(3),
        ..DivaConfig::default()
    };
    match Diva::new(config).run(&rel, &sigma) {
        Err(DivaError::SearchBudgetExhausted { backtracks }) => {
            assert_eq!(backtracks, 4, "stops at the first step past the limit");
        }
        Err(DivaError::NoDiverseClustering { .. }) => {
            // Also acceptable: proof completed within 3 backtracks.
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
}

#[test]
fn candidate_sets_expose_min_total() {
    let rel = paper_table1();
    let c = Constraint::single("ETH", "Asian", 2, 5).bind(&rel).unwrap();
    let cs = CandidateSet::enumerate(&rel, &c, 2, 64, None);
    assert_eq!(cs.min_total(), 2);
    let free = Constraint::single("ETH", "Asian", 0, 5).bind(&rel).unwrap();
    let cs = CandidateSet::enumerate(&rel, &free, 2, 64, None);
    assert_eq!(cs.min_total(), 0);
    let unsat = Constraint::single("ETH", "Asian", 4, 10).bind(&rel).unwrap();
    let cs = CandidateSet::enumerate(&rel, &unsat, 2, 64, None);
    assert_eq!(cs.min_total(), usize::MAX);
}

#[test]
fn l_diversity_filters_candidates() {
    // Build a relation where one value's rows share a single sensitive
    // value: with l=2 that constraint has no candidates at all.
    let schema = Arc::new(Schema::new(vec![Attribute::quasi("A"), Attribute::sensitive("S")]));
    let mut b = RelationBuilder::new(schema);
    for _ in 0..10 {
        b.push_row(&["mono", "same"]);
    }
    for i in 0..10 {
        b.push_row(&["poly", format!("s{i}").as_str()]);
    }
    let rel = b.finish();
    let mono = Constraint::single("A", "mono", 4, 10).bind(&rel).unwrap();
    let poly = Constraint::single("A", "poly", 4, 10).bind(&rel).unwrap();
    let cs_mono = CandidateSet::enumerate_with_privacy(&rel, &mono, 2, 64, None, 2);
    let cs_poly = CandidateSet::enumerate_with_privacy(&rel, &poly, 2, 64, None, 2);
    assert!(cs_mono.is_empty(), "mono-sensitive clusters cannot be 2-diverse");
    assert!(!cs_poly.is_empty());
}
