#!/usr/bin/env sh
# Repo gate: formatting, lints, tests, and a bench smoke run.
# Usage: scripts/check.sh  (from the repo root; pass --offline through
# CARGO_FLAGS if the environment has no registry access).
set -eu

cd "$(dirname "$0")/.."
FLAGS="${CARGO_FLAGS:---offline}"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -D warnings"
cargo clippy $FLAGS --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test $FLAGS -q --workspace

echo "==> bench smoke (perf emitter -> BENCH_diva.json)"
cargo run $FLAGS --release -p diva-bench --bin experiments -- perf >/dev/null

echo "==> all checks passed"
