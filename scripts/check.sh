#!/usr/bin/env sh
# Repo gate: formatting, lints, the diva-tidy static-analysis pass,
# tests (default + strict-invariants), and a bench smoke run.
# Usage: scripts/check.sh  (from the repo root; pass --offline through
# CARGO_FLAGS if the environment has no registry access; set
# SKIP_BENCH=1 to skip the bench smoke during quick iterations and
# SKIP_FAULTS=1 to skip the fault-injection matrix).
set -eu

cd "$(dirname "$0")/.."
FLAGS="${CARGO_FLAGS:---offline}"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -D warnings"
cargo clippy $FLAGS --workspace --all-targets -- -D warnings

echo "==> diva-tidy (repo lint rules)"
cargo run $FLAGS -q -p diva-tidy

echo "==> cargo test -q"
cargo test $FLAGS -q --workspace

echo "==> cargo test -q --features strict-invariants (runtime validators)"
cargo test $FLAGS -q --features strict-invariants -p diva-core
cargo test $FLAGS -q --features strict-invariants --test pipeline

if [ "${SKIP_FAULTS:-0}" = "1" ]; then
    echo "==> fault-injection matrix skipped (SKIP_FAULTS=1)"
else
    echo "==> cargo test -q --features fault-inject --test faults (fault matrix)"
    cargo test $FLAGS -q --features fault-inject --test faults
    echo "==> fault matrix under strict-invariants"
    cargo test $FLAGS -q --features "fault-inject strict-invariants" --test faults
fi

if [ "${SKIP_BENCH:-0}" = "1" ]; then
    echo "==> bench smoke skipped (SKIP_BENCH=1)"
    echo "==> obs trace check skipped (SKIP_BENCH=1)"
else
    echo "==> bench smoke (perf emitter -> BENCH_diva.json, incl. obs overhead)"
    cargo run $FLAGS --release -p diva-bench --bin experiments -- perf >/dev/null

    echo "==> obs trace check (medical-4k run -> trace-check)"
    OBS_DIR="$(mktemp -d)"
    trap 'rm -rf "$OBS_DIR"' EXIT
    cargo run $FLAGS --release -q -p diva-cli --bin diva -- generate \
        --dataset medical --rows 4000 --seed 7 --output "$OBS_DIR/medical.csv"
    cargo run $FLAGS --release -q -p diva-cli --bin diva -- sigma-gen \
        --input "$OBS_DIR/medical.csv" --roles qi,qi,qi,qi,qi,sensitive \
        --class proportional --count 5 --slack 0.7 --min-freq 20 \
        --output "$OBS_DIR/sigma.txt"
    cargo run $FLAGS --release -q -p diva-cli --bin diva -- anonymize \
        --input "$OBS_DIR/medical.csv" --roles qi,qi,qi,qi,qi,sensitive \
        --constraints "$OBS_DIR/sigma.txt" -k 5 --quiet \
        --trace "$OBS_DIR/trace.jsonl" --metrics "$OBS_DIR/metrics.json" \
        --output "$OBS_DIR/anon.csv"
    cargo run $FLAGS --release -q -p diva-obs --bin trace-check -- \
        "$OBS_DIR/trace.jsonl" "$OBS_DIR/metrics.json"
fi

echo "==> all checks passed"
