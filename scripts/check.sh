#!/usr/bin/env sh
# Repo gate: formatting, lints, the diva-tidy static-analysis pass,
# tests (default + strict-invariants), a bench smoke run, and the
# profiling/trace-regression gate.
# Usage: scripts/check.sh  (from the repo root; pass --offline through
# CARGO_FLAGS if the environment has no registry access; set
# SKIP_BENCH=1 to skip the bench smoke during quick iterations,
# SKIP_FAULTS=1 to skip the fault-injection matrix,
# SKIP_DECOMP=1 to skip the decomposition differential,
# SKIP_PROFILE=1 to skip the profiling capture + trace-diff gate,
# SKIP_LIVE=1 to skip the live-telemetry mid-run scrape gate,
# SKIP_AUDIT=1 to skip the privacy-audit gate,
# SKIP_PROVENANCE=1 to skip the decision-provenance gate, and
# SKIP_TIDY_RATCHET=1 to skip the tidy ratchet gate).
set -eu

cd "$(dirname "$0")/.."
FLAGS="${CARGO_FLAGS:---offline}"
BASELINE="results/baseline/medical-4k.summary.json"

OBS_DIR=""
PROF_DIR=""
LIVE_DIR=""
AUDIT_DIR=""
PROV_DIR=""
cleanup() {
    [ -n "$OBS_DIR" ] && rm -rf "$OBS_DIR"
    [ -n "$PROF_DIR" ] && rm -rf "$PROF_DIR"
    [ -n "$LIVE_DIR" ] && rm -rf "$LIVE_DIR"
    [ -n "$AUDIT_DIR" ] && rm -rf "$AUDIT_DIR"
    [ -n "$PROV_DIR" ] && rm -rf "$PROV_DIR"
}
trap cleanup EXIT

# Shared medical-4k capture recipe: generate + sigma-gen + anonymize
# into $1 (the workdir), passing any extra anonymize flags through.
capture_medical_4k() {
    dir="$1"
    shift
    cargo run $FLAGS --release -q -p diva-cli --bin diva -- generate \
        --dataset medical --rows 4000 --seed 7 --output "$dir/medical.csv"
    cargo run $FLAGS --release -q -p diva-cli --bin diva -- sigma-gen \
        --input "$dir/medical.csv" --roles qi,qi,qi,qi,qi,sensitive \
        --class proportional --count 5 --slack 0.7 --min-freq 20 \
        --output "$dir/sigma.txt"
    cargo run $FLAGS --release -q -p diva-cli --bin diva -- anonymize \
        --input "$dir/medical.csv" --roles qi,qi,qi,qi,qi,sensitive \
        --constraints "$dir/sigma.txt" -k 5 --quiet \
        --trace "$dir/trace.jsonl" --metrics "$dir/metrics.json" \
        --output "$dir/anon.csv" "$@"
}

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -D warnings"
cargo clippy $FLAGS --workspace --all-targets -- -D warnings

if [ "${SKIP_TIDY_RATCHET:-0}" = "1" ]; then
    echo "==> diva-tidy ratchet gate skipped (SKIP_TIDY_RATCHET=1)"
else
    echo "==> diva-tidy (repo lint rules, ratcheted vs results/tidy-ratchet.json)"
    # Exit codes: 0 clean/within-ratchet, 1 regression, 2 tool error.
    tidy_status=0
    cargo run $FLAGS -q -p diva-tidy -- \
        --emit json --ratchet results/tidy-ratchet.json \
        >/dev/null || tidy_status=$?
    if [ "$tidy_status" -eq 1 ]; then
        echo "diva-tidy: new findings exceed the committed ratchet; fix them or," >&2
        echo "for rules that legitimately cannot reach zero yet, refresh with:" >&2
        echo "    cargo run -q -p diva-tidy -- --write-ratchet" >&2
        exit 1
    elif [ "$tidy_status" -ne 0 ]; then
        echo "diva-tidy: tool error (exit $tidy_status)" >&2
        exit "$tidy_status"
    fi
fi

echo "==> cargo test -q"
cargo test $FLAGS -q --workspace

echo "==> cargo test -q --features strict-invariants (runtime validators)"
cargo test $FLAGS -q --features strict-invariants -p diva-core
cargo test $FLAGS -q --features strict-invariants --test pipeline

if [ "${SKIP_DECOMP:-0}" = "1" ]; then
    echo "==> decomposition differential skipped (SKIP_DECOMP=1)"
else
    echo "==> decomposition differential under strict-invariants (byte-identity)"
    cargo test $FLAGS -q --features strict-invariants --test differential \
        decomposed_solve_is_byte_identical_to_monolithic
fi

if [ "${SKIP_FAULTS:-0}" = "1" ]; then
    echo "==> fault-injection matrix skipped (SKIP_FAULTS=1)"
else
    echo "==> cargo test -q --features fault-inject --test faults (fault matrix)"
    cargo test $FLAGS -q --features fault-inject --test faults
    echo "==> fault matrix under strict-invariants"
    cargo test $FLAGS -q --features "fault-inject strict-invariants" --test faults
fi

if [ "${SKIP_BENCH:-0}" = "1" ]; then
    echo "==> bench smoke skipped (SKIP_BENCH=1)"
    echo "==> obs trace check skipped (SKIP_BENCH=1)"
else
    echo "==> bench smoke (perf emitter -> BENCH_diva.json, incl. obs overhead)"
    cargo run $FLAGS --release -p diva-bench --bin experiments -- perf >/dev/null

    echo "==> obs trace check (medical-4k run -> trace-check)"
    OBS_DIR="$(mktemp -d)"
    capture_medical_4k "$OBS_DIR"
    cargo run $FLAGS --release -q -p diva-obs --bin trace-check -- \
        "$OBS_DIR/trace.jsonl" "$OBS_DIR/metrics.json"
fi

if [ "${SKIP_LIVE:-0}" = "1" ]; then
    echo "==> live telemetry gate skipped (SKIP_LIVE=1)"
else
    echo "==> live telemetry gate (mid-run scrape of --stats-addr on medical-4k)"
    # Pre-build both binaries so the scrape client launches instantly
    # once the run is in flight.
    cargo build $FLAGS --release -q -p diva-cli -p diva-obs
    LIVE_DIR="$(mktemp -d)"
    cargo run $FLAGS --release -q -p diva-cli --bin diva -- generate \
        --dataset medical --rows 4000 --seed 7 --output "$LIVE_DIR/medical.csv"
    # 15 proportional constraints make the colouring search long
    # enough (~10^5 nodes) that a mid-run snapshot is observable.
    cargo run $FLAGS --release -q -p diva-cli --bin diva -- sigma-gen \
        --input "$LIVE_DIR/medical.csv" --roles qi,qi,qi,qi,qi,sensitive \
        --class proportional --count 15 --slack 0.7 --min-freq 20 \
        --output "$LIVE_DIR/sigma.txt"
    cargo run $FLAGS --release -q -p diva-cli --bin diva -- anonymize \
        --input "$LIVE_DIR/medical.csv" --roles qi,qi,qi,qi,qi,sensitive \
        --constraints "$LIVE_DIR/sigma.txt" -k 5 --quiet \
        --metrics "$LIVE_DIR/metrics.json" --stats-addr 127.0.0.1:0 \
        --output "$LIVE_DIR/anon.csv" 2>"$LIVE_DIR/stderr.log" &
    live_pid=$!
    # The CLI binds port 0 and announces the resolved address on
    # stderr; poll for the announcement.
    live_addr=""
    i=0
    while [ "$i" -lt 400 ]; do
        live_addr=$(sed -n 's/^stats endpoint listening on //p' "$LIVE_DIR/stderr.log")
        [ -n "$live_addr" ] && break
        i=$((i + 1))
        sleep 0.01
    done
    if [ -z "$live_addr" ]; then
        cat "$LIVE_DIR/stderr.log" >&2
        echo "live: stats endpoint address never announced" >&2
        exit 1
    fi
    scrape_out=$(cargo run $FLAGS --release -q -p diva-obs --bin trace-check -- \
        --scrape "$live_addr" --timeout-ms 20000)
    echo "$scrape_out"
    wait "$live_pid"
    mid_nodes=$(printf '%s' "$scrape_out" | sed -n 's/^scrape ok: nodes=\([0-9]*\).*/\1/p')
    final_nodes=$(sed -n 's/.*"coloring.MaxFanOut.assignments_tried": *\([0-9]*\).*/\1/p' \
        "$LIVE_DIR/metrics.json")
    if [ -z "$mid_nodes" ] || [ -z "$final_nodes" ] \
        || [ "$mid_nodes" -le 0 ] || [ "$mid_nodes" -ge "$final_nodes" ]; then
        echo "live: mid-run node count ($mid_nodes) not strictly inside (0, $final_nodes)" >&2
        exit 1
    fi
    echo "live telemetry ok: scraped $mid_nodes of $final_nodes nodes mid-run"
fi

if [ "${SKIP_AUDIT:-0}" = "1" ]; then
    echo "==> privacy-audit gate skipped (SKIP_AUDIT=1)"
else
    echo "==> privacy-audit gate (golden fixtures + medical-4k re-score)"
    AUDIT_DIR="$(mktemp -d)"
    # Golden fixtures: the CLI's deterministic JSON must match the
    # committed expectations byte-for-byte.
    for name in paper_table1_raw paper_table2 negative; do
        roles=$(cat "tests/fixtures/audit/$name.roles")
        cargo run $FLAGS --release -q -p diva-cli --bin diva -- audit \
            --input "tests/fixtures/audit/$name.csv" --roles "$roles" \
            --emit json --output "$AUDIT_DIR/$name.json"
        if ! diff -u "tests/fixtures/audit/$name.expect.json" \
            "$AUDIT_DIR/$name.json"; then
            echo "audit: fixture $name drifted from its committed expectation" >&2
            exit 1
        fi
    done
    # The negative fixture must fail its gates with a non-zero exit.
    if cargo run $FLAGS --release -q -p diva-cli --bin diva -- audit \
        --input tests/fixtures/audit/negative.csv --roles qi,sensitive \
        --k 3 --l 2 --emit table >/dev/null 2>&1; then
        echo "audit: negative fixture passed gates it must fail" >&2
        exit 1
    fi
    # Re-score the acceptance pipeline output: the solver's configured
    # k and the diversity floor must be confirmed by the independent
    # audit (exit code is the gate).
    capture_medical_4k "$AUDIT_DIR"
    cargo run $FLAGS --release -q -p diva-cli --bin diva -- audit \
        --input "$AUDIT_DIR/anon.csv" --roles qi,qi,qi,qi,qi,sensitive \
        --k 5 --l 1 --emit table
    echo "privacy audit ok: fixtures byte-stable, medical-4k confirmed at k=5"
fi

if [ "${SKIP_PROVENANCE:-0}" = "1" ]; then
    echo "==> decision-provenance gate skipped (SKIP_PROVENANCE=1)"
else
    echo "==> decision-provenance gate (medical-4k --provenance + explain + byte-identity)"
    PROV_DIR="$(mktemp -d)"
    capture_medical_4k "$PROV_DIR" --provenance "$PROV_DIR/prov.jsonl"
    # The export must pass record/reference integrity validation.
    cargo run $FLAGS --release -q -p diva-obs --bin trace-check -- \
        --require-provenance "$PROV_DIR/prov.jsonl"
    # `diva explain` must answer the utility-attribution query against
    # the saved file (exit code is the gate).
    cargo run $FLAGS --release -q -p diva-cli --bin diva -- explain \
        --provenance "$PROV_DIR/prov.jsonl" --top-costly
    # The disabled recorder is free: a run *without* --provenance must
    # publish the byte-identical relation.
    mv "$PROV_DIR/anon.csv" "$PROV_DIR/anon.with-prov.csv"
    cargo run $FLAGS --release -q -p diva-cli --bin diva -- anonymize \
        --input "$PROV_DIR/medical.csv" --roles qi,qi,qi,qi,qi,sensitive \
        --constraints "$PROV_DIR/sigma.txt" -k 5 --quiet \
        --output "$PROV_DIR/anon.csv"
    if ! cmp -s "$PROV_DIR/anon.csv" "$PROV_DIR/anon.with-prov.csv"; then
        echo "provenance: enabling --provenance changed the published relation" >&2
        exit 1
    fi
    echo "provenance ok: export validated, explain answered, output byte-identical"
fi

if [ "${SKIP_PROFILE:-0}" = "1" ]; then
    echo "==> profiling gate skipped (SKIP_PROFILE=1)"
else
    echo "==> cargo test -q --features alloc-profile (memory attribution)"
    cargo test $FLAGS -q --features alloc-profile --test profiling
    cargo test $FLAGS -q -p diva-obs --features alloc-profile

    echo "==> profiling capture (medical-4k with counting allocator + flamegraph)"
    PROF_DIR="$(mktemp -d)"
    capture_medical_4k "$PROF_DIR" --flame "$PROF_DIR/flame.folded"
    cargo run $FLAGS --release -q -p diva-obs --bin trace-check -- \
        --require-alloc "$PROF_DIR/trace.jsonl" "$PROF_DIR/metrics.json"

    echo "==> trace-diff regression gate (capture vs $BASELINE)"
    if ! cargo run $FLAGS --release -q -p diva-obs --bin trace-diff -- \
        "$BASELINE" "$PROF_DIR/metrics.json"; then
        cp "$PROF_DIR/metrics.json" "$BASELINE.candidate"
        echo "trace-diff: regression vs baseline; if intentional, refresh with: mv $BASELINE.candidate $BASELINE" >&2
        exit 1
    fi
fi

echo "==> all checks passed"
