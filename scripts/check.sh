#!/usr/bin/env sh
# Repo gate: formatting, lints, the diva-tidy static-analysis pass,
# tests (default + strict-invariants), and a bench smoke run.
# Usage: scripts/check.sh  (from the repo root; pass --offline through
# CARGO_FLAGS if the environment has no registry access; set
# SKIP_BENCH=1 to skip the bench smoke during quick iterations).
set -eu

cd "$(dirname "$0")/.."
FLAGS="${CARGO_FLAGS:---offline}"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -D warnings"
cargo clippy $FLAGS --workspace --all-targets -- -D warnings

echo "==> diva-tidy (repo lint rules)"
cargo run $FLAGS -q -p diva-tidy

echo "==> cargo test -q"
cargo test $FLAGS -q --workspace

echo "==> cargo test -q --features strict-invariants (runtime validators)"
cargo test $FLAGS -q --features strict-invariants -p diva-core
cargo test $FLAGS -q --features strict-invariants --test pipeline

if [ "${SKIP_BENCH:-0}" = "1" ]; then
    echo "==> bench smoke skipped (SKIP_BENCH=1)"
else
    echo "==> bench smoke (perf emitter -> BENCH_diva.json)"
    cargo run $FLAGS --release -p diva-bench --bin experiments -- perf >/dev/null
fi

echo "==> all checks passed"
