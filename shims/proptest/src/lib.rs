//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no registry access, so the workspace
//! vendors the slice of `proptest` its tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_filter` /
//! `prop_filter_map`, range and tuple and regex-literal strategies,
//! [`collection::vec`], [`strategy::Just`], `prop_oneof!`, `any`, and
//! the `proptest!` / `prop_assert*!` / `prop_assume!` macros.
//!
//! Semantics match upstream except that failing inputs are **not
//! shrunk**: a failure reports the assertion message and the case seed
//! (re-run with `PROPTEST_CASES` / the printed seed to reproduce).
//! Cases are deterministic per test name, so CI runs are stable.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

mod pattern;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The property-test entry macro. Mirrors `proptest::proptest!`:
/// an optional `#![proptest_config(...)]` inner attribute followed by
/// `#[test]` functions whose arguments are `pattern in strategy` or
/// `name: Type` (implicit [`arbitrary::any`]).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                |__rng| {
                    $crate::__proptest_bind!(__rng; ($($args)*); $body);
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:expr; (); $body:block) => { $body };
    ($rng:expr; ($pat:pat in $strat:expr $(, $($rest:tt)*)?); $body:block) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng)?;
        $crate::__proptest_bind!($rng; ($($($rest)*)?); $body)
    };
    ($rng:expr; ($name:ident : $ty:ty $(, $($rest:tt)*)?); $body:block) => {
        let $name: $ty =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng)?;
        $crate::__proptest_bind!($rng; ($($($rest)*)?); $body)
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

/// Rejects the current case (regenerates inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
