//! `any::<T>()` — default strategies for primitive types.

use rand::prelude::*;
use rand::Standard;

use crate::strategy::Strategy;
use crate::test_runner::Rejection;

/// Types with a canonical default strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The default strategy for `T` (`proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> Result<T, Rejection> {
        Ok(T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32, bool);

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        rng.gen_range(0x20u32..0x7f) as u8 as char
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut StdRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

// `Standard` is implemented for all the primitive types above; this
// bound documents the delegation without re-listing them.
#[allow(dead_code)]
fn _assert_standard<T: Standard>() {}
