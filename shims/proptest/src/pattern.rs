//! Miniature regex sampler for string-literal strategies.
//!
//! Supports the subset used as proptest string strategies: literal
//! characters, escaped characters, character classes (`[a-z0-9_ .-]`,
//! leading `^` negation over printable ASCII), and the quantifiers
//! `*` (0..=8), `+` (1..=8), `?`, `{m}`, and `{m,n}`. Unsupported
//! syntax (alternation, groups, anchors) panics so a silently-wrong
//! generator never masquerades as the real thing.

use rand::prelude::*;

#[derive(Debug, Clone)]
enum Atom {
    /// A set of candidate characters, one chosen uniformly.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// The repetition range unbounded quantifiers expand to.
const UNBOUNDED_MAX: usize = 8;

fn printable_ascii() -> Vec<char> {
    (0x20u8..0x7f).map(char::from).collect()
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (class, next) = parse_class(&chars, i + 1);
                i = next;
                Atom::Class(class)
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("pattern {pattern:?}: trailing backslash"));
                i += 2;
                Atom::Class(vec![unescape(c)])
            }
            '(' | ')' | '|' | '^' | '$' => {
                panic!("pattern {pattern:?}: unsupported regex syntax {:?}", chars[i])
            }
            '.' => {
                i += 1;
                Atom::Class(printable_ascii())
            }
            c => {
                i += 1;
                Atom::Class(vec![c])
            }
        };
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, UNBOUNDED_MAX)
            }
            Some('+') => {
                i += 1;
                (1, UNBOUNDED_MAX)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("pattern {pattern:?}: unclosed {{"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    None => {
                        let n = body.trim().parse().expect("numeric {n} quantifier");
                        (n, n)
                    }
                    Some((lo, hi)) => {
                        let lo = lo.trim().parse().expect("numeric {m,n} quantifier");
                        let hi = if hi.trim().is_empty() {
                            lo + UNBOUNDED_MAX
                        } else {
                            hi.trim().parse().expect("numeric {m,n} quantifier")
                        };
                        (lo, hi)
                    }
                }
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

/// Parses a character class starting *after* the `[`; returns the
/// candidate set and the index one past the closing `]`.
fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut negated = false;
    if chars.get(i) == Some(&'^') {
        negated = true;
        i += 1;
    }
    let mut set = Vec::new();
    let mut first = true;
    while i < chars.len() && (chars[i] != ']' || first) {
        first = false;
        if chars[i] == '\\' {
            set.push(unescape(chars[i + 1]));
            i += 2;
            continue;
        }
        // A range `a-z` (the `-` must not be the last char before `]`).
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            assert!(lo <= hi, "inverted class range");
            for c in lo..=hi {
                set.push(char::from_u32(c).expect("class range stays in char"));
            }
            i += 3;
        } else {
            set.push(chars[i]);
            i += 1;
        }
    }
    assert!(chars.get(i) == Some(&']'), "unclosed character class");
    if negated {
        let set: Vec<char> = printable_ascii().into_iter().filter(|c| !set.contains(c)).collect();
        assert!(!set.is_empty(), "negated class excludes everything");
        return (set, i + 1);
    }
    assert!(!set.is_empty(), "empty character class");
    (set, i + 1)
}

/// Samples one string matching `pattern`.
pub fn sample(pattern: &str, rng: &mut StdRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let n = rng.gen_range(piece.min..=piece.max);
        let Atom::Class(ref set) = piece.atom;
        for _ in 0..n {
            out.push(set[rng.gen_range(0..set.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_class() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = sample("[A-Za-z][A-Za-z0-9_ .-]{0,10}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 11, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
        }
    }

    #[test]
    fn star_quantifier_covers_empty() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_empty = false;
        for _ in 0..200 {
            let s = sample("[ -~]*", &mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            saw_empty |= s.is_empty();
        }
        assert!(saw_empty, "0-repetition never sampled");
    }

    #[test]
    fn fixed_literal() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sample("abc", &mut rng), "abc");
    }
}
