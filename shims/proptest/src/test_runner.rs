//! Case-running machinery behind the `proptest!` macro.

use rand::prelude::*;

/// Why a generated case was abandoned (filter exhaustion or
/// `prop_assume!`); the runner regenerates instead of failing.
#[derive(Debug, Clone)]
pub struct Rejection {
    reason: String,
}

impl Rejection {
    pub fn new(reason: &str) -> Self {
        Self { reason: reason.to_string() }
    }
}

/// Outcome of one test-case execution.
#[derive(Debug)]
pub enum TestCaseError {
    /// Regenerate inputs and try again (does not count as a run case).
    Reject(String),
    /// The property failed; the runner panics with this message.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl From<Rejection> for TestCaseError {
    fn from(r: Rejection) -> Self {
        TestCaseError::Reject(r.reason)
    }
}

/// Runner configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on rejected cases before the runner gives up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        Self { cases, max_global_rejects: cases.saturating_mul(64).max(1024) }
    }
}

impl ProptestConfig {
    /// A configuration running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

/// FNV-1a, used to derive a per-test base seed from the test's path so
/// runs are deterministic and independent of execution order.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `case` until `config.cases` cases pass, rejection budget is
/// exhausted, or a case fails (panic).
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    let base_seed = fnv1a(test_name.as_bytes());
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut attempt: u64 = 0;
    while passed < config.cases {
        let seed = base_seed.wrapping_add(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        attempt += 1;
        let mut rng = StdRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{test_name}: too many rejected cases ({rejected}) — \
                         loosen the filters or assumptions"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property failed after {passed} passing case(s) \
                     [case seed {seed:#x}]: {msg}"
                );
            }
        }
    }
}
