//! The [`Strategy`] trait and its combinators.

use rand::prelude::*;

use crate::test_runner::Rejection;

/// How many times filtering combinators retry before rejecting the
/// whole test case.
const FILTER_RETRIES: usize = 64;

/// A recipe for generating values of `Self::Value`.
///
/// Matches the upstream trait shape closely enough for test code:
/// range literals, tuples, `&str` regex literals, and the combinator
/// methods all work. Generation is fallible so filters can reject.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value (or rejects the case, e.g. a filter that
    /// never passed).
    fn generate(&self, rng: &mut StdRng) -> Result<Self::Value, Rejection>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Keeps only values for which `f` returns `true`.
    fn prop_filter<R, F>(self, whence: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { base: self, whence: whence.into(), f }
    }

    /// Simultaneously filters and maps.
    fn prop_filter_map<O, R, F>(self, whence: R, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { base: self, whence: whence.into(), f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Result<Self::Value, Rejection> {
        (**self).generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> Result<T, Rejection> {
        (**self).generate(rng)
    }
}

/// A boxed, type-erased strategy (what [`crate::prop_oneof!`] stores).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy, erasing its concrete type.
pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> Result<O, Rejection> {
        self.base.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> Result<S2::Value, Rejection> {
        let inner = (self.f)(self.base.generate(rng)?);
        inner.generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Result<S::Value, Rejection> {
        for _ in 0..FILTER_RETRIES {
            let v = self.base.generate(rng)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(Rejection::new(&self.whence))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    base: S,
    whence: String,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> Result<O, Rejection> {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.base.generate(rng)?) {
                return Ok(v);
            }
        }
        Err(Rejection::new(&self.whence))
    }
}

/// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> Result<T, Rejection> {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Result<$t, Rejection> {
                Ok(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Result<$t, Rejection> {
                Ok(rng.gen_range(self.clone()))
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// String literals are regex strategies (subset: literals, character
/// classes, and `* + ? {m} {m,n}` quantifiers — see [`crate::pattern`]).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> Result<String, Rejection> {
        Ok(crate::pattern::sample(self, rng))
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> Result<String, Rejection> {
        Ok(crate::pattern::sample(self, rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Result<Self::Value, Rejection> {
                let ($($name,)+) = self;
                Ok(($($name.generate(rng)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
