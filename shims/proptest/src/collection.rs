//! Collection strategies (`proptest::collection`).

use rand::prelude::*;

use crate::strategy::Strategy;
use crate::test_runner::Rejection;

/// Element-count specification: a fixed size or a range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi_exclusive: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi_exclusive: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self { lo: *r.start(), hi_exclusive: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Result<Vec<S::Value>, Rejection> {
        let n = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
