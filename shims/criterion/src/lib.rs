//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no registry access, so the workspace
//! vendors the slice of `criterion` its benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Statistics are deliberately simple —
//! each benchmark runs `sample_size` samples after one warm-up and
//! reports mean / min / max wall-clock to stdout.

use std::time::{Duration, Instant};

/// Opaque identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Prevents the optimizer from eliding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (after one warm-up).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup { _parent: self, name, sample_size: 10 }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, 10, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

fn run_one(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().expect("non-empty");
    let max = b.samples.iter().max().expect("non-empty");
    println!(
        "{label:<50} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
        b.samples.len()
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
