//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so the workspace
//! vendors the thin slice of `rand` it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++ seeded via
//! SplitMix64), the [`Rng`] extension methods `gen`, `gen_range`, and
//! `gen_bool`, and [`seq::SliceRandom::shuffle`]. Streams differ from
//! upstream `rand` (the repo only relies on *determinism per seed*,
//! never on specific upstream sequences).

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator seedable from a `u64`, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value of `T` from `self`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); span ≤ u64::MAX here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_one(rng)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * unit;
        // Guard against rounding onto the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        ((self.start as f64)..(self.end as f64)).sample_one(rng) as f32
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        ((*self.start() as f64)..=(*self.end() as f64)).sample_one(rng) as f32
    }
}

/// The user-facing generator interface (`rand::Rng`), blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    /// A sample of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard-distribution sampling (stand-in for
/// `Standard: Distribution<T>`): floats in `[0, 1)`, integers uniform.
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::standard(rng) as f32
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (`rand::seq::SliceRandom`), Fisher–Yates.
    pub trait SliceRandom {
        type Item;

        /// Uniformly permutes the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&frac), "frac={frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
