//! End-to-end fidelity checks against the paper's running example
//! (Tables 1–3, Examples 1.1–3.4).

use diva_constraints::{conflict_rate, Constraint, ConstraintSet};
use diva_core::{Diva, DivaConfig, Strategy};
use diva_relation::fixtures::{medical_schema, paper_table1};
use diva_relation::suppress::{is_refinement, suppress_clustering};
use diva_relation::{is_k_anonymous, qi_groups, RelationBuilder};

fn example_sigma() -> Vec<Constraint> {
    vec![
        Constraint::single("ETH", "Asian", 2, 5),
        Constraint::single("ETH", "African", 1, 3),
        Constraint::single("CTY", "Vancouver", 2, 4),
    ]
}

/// Table 2 of the paper: the plain 3-anonymous suppression.
fn paper_table2() -> diva_relation::Relation {
    let mut b = RelationBuilder::new(medical_schema());
    b.push_row(&["★", "Caucasian", "★", "AB", "Calgary", "Hypertension"]);
    b.push_row(&["★", "Caucasian", "★", "AB", "Calgary", "Tuberculosis"]);
    b.push_row(&["★", "Caucasian", "★", "AB", "Calgary", "Osteoarthritis"]);
    b.push_row(&["Male", "★", "★", "★", "★", "Migraine"]);
    b.push_row(&["Male", "★", "★", "★", "★", "Hypertension"]);
    b.push_row(&["Male", "★", "★", "★", "★", "Seizure"]);
    b.push_row(&["Male", "★", "★", "★", "★", "Hypertension"]);
    b.push_row(&["Female", "Asian", "★", "★", "★", "Seizure"]);
    b.push_row(&["Female", "Asian", "★", "★", "★", "Influenza"]);
    b.push_row(&["Female", "Asian", "★", "★", "★", "Migraine"]);
    b.finish()
}

/// Table 3 of the paper: DIVA's k = 2 output.
fn paper_table3() -> diva_relation::Relation {
    let mut b = RelationBuilder::new(medical_schema());
    b.push_row(&["Female", "Caucasian", "★", "AB", "Calgary", "Hypertension"]);
    b.push_row(&["Female", "Caucasian", "★", "AB", "Calgary", "Tuberculosis"]);
    b.push_row(&["Male", "Caucasian", "★", "★", "★", "Osteoarthritis"]);
    b.push_row(&["Male", "Caucasian", "★", "★", "★", "Migraine"]);
    b.push_row(&["Male", "African", "★", "★", "★", "Hypertension"]);
    b.push_row(&["Male", "African", "★", "★", "★", "Seizure"]);
    b.push_row(&["★", "★", "★", "BC", "Vancouver", "Hypertension"]);
    b.push_row(&["★", "★", "★", "BC", "Vancouver", "Seizure"]);
    b.push_row(&["Female", "Asian", "★", "★", "★", "Influenza"]);
    b.push_row(&["Female", "Asian", "★", "★", "★", "Migraine"]);
    b.finish()
}

#[test]
fn table2_is_3_anonymous_but_not_diverse() {
    let t2 = paper_table2();
    assert!(is_k_anonymous(&t2, 3));
    // Example 1.1's complaint: African ethnicity vanished from the Male
    // group — σ2 = (ETH[African], 1, 3) fails on Table 2.
    let set = ConstraintSet::bind(&example_sigma(), &t2).unwrap();
    let violated = set.violations(&t2);
    assert!(violated.contains(&1), "σ2 should be violated by Table 2");
    // σ3 (Vancouver) also fails — all city values in groups 2–3 are ★.
    assert!(violated.contains(&2));
    // σ1 (Asian) survives: the third group retains Female Asian.
    assert!(!violated.contains(&0));
}

#[test]
fn table3_is_2_anonymous_and_diverse() {
    let t3 = paper_table3();
    assert!(is_k_anonymous(&t3, 2));
    let set = ConstraintSet::bind(&example_sigma(), &t3).unwrap();
    assert!(set.satisfied_by(&t3));
    assert_eq!(t3.star_count(), 26);
    assert_eq!(qi_groups(&t3).len(), 5);
}

#[test]
fn example_31_clustering_matches_table3_groups() {
    // S_Σ = {{t9,t10}, {t5,t6}, {t7,t8}} from Example 3.1 (0-based
    // rows {8,9}, {4,5}, {6,7}), plus Anonymize's {{t1,t2},{t3,t4}}.
    let r = paper_table1();
    let clusters = vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7], vec![8, 9]];
    let s = suppress_clustering(&r, &clusters);
    assert!(is_k_anonymous(&s.relation, 2));
    let set = ConstraintSet::bind(&example_sigma(), &s.relation).unwrap();
    assert!(set.satisfied_by(&s.relation));
    // The manual clustering reproduces Table 3's suppression count.
    assert_eq!(s.relation.star_count(), paper_table3().star_count());
}

#[test]
fn example_33_conflict_rates() {
    // Figure 2's overlaps via the conflict-rate metric.
    let r = paper_table1();
    let set = ConstraintSet::bind(&example_sigma(), &r).unwrap();
    let cs = set.constraints();
    assert_eq!(cs[0].target_rows, vec![7, 8, 9]); // I_σ1
    assert_eq!(cs[1].target_rows, vec![4, 5]); // I_σ2
    assert_eq!(cs[2].target_rows, vec![5, 6, 7, 9]); // I_σ3
    assert!(conflict_rate(&set) > 0.0);
}

#[test]
fn diva_reproduces_table3_quality_for_every_strategy() {
    let r = paper_table1();
    let target_stars = paper_table3().star_count();
    for strategy in Strategy::all() {
        let out = Diva::new(DivaConfig::with_k(2).strategy(strategy))
            .run(&r, &example_sigma())
            .unwrap_or_else(|e| panic!("{strategy}: {e}"));
        assert!(is_k_anonymous(&out.relation, 2));
        let set = ConstraintSet::bind(&example_sigma(), &out.relation).unwrap();
        assert!(set.satisfied_by(&out.relation), "{strategy}");
        assert!(is_refinement(&r, &out.relation, &out.source_rows), "{strategy}");
        // The clustering is not unique; require Table-3-comparable
        // information loss (within 50%).
        assert!(
            out.relation.star_count() as f64 <= target_stars as f64 * 1.5,
            "{strategy}: {} ★ vs paper's {target_stars}",
            out.relation.star_count()
        );
    }
}

#[test]
fn sigma4_upper_bound_interaction_from_section_32() {
    // §3.2: Σ = {σ2, σ4} with σ4 = (GEN[Male], 1, 3). The African
    // clustering {{t5,t6}} preserves two Males, so a Male clustering
    // of two more would falsify σ4's upper bound. DIVA must still find
    // a solution (e.g. sharing the African cluster for both).
    let r = paper_table1();
    let sigma =
        vec![Constraint::single("ETH", "African", 1, 3), Constraint::single("GEN", "Male", 1, 3)];
    for strategy in Strategy::all() {
        let out = Diva::new(DivaConfig::with_k(2).strategy(strategy))
            .run(&r, &sigma)
            .unwrap_or_else(|e| panic!("{strategy}: {e}"));
        let set = ConstraintSet::bind(&sigma, &out.relation).unwrap();
        assert!(set.satisfied_by(&out.relation), "{strategy}");
    }
}
