//! Workspace-level profiling tests: self-time/critical-path analysis
//! over a real pipeline run, memory attribution on the degraded path,
//! and the trace-regression gate against the committed baseline.
//!
//! The analysis tests run in every configuration; the memory tests
//! need `--features alloc-profile` (this binary then installs the
//! counting allocator, mirroring the `diva` CLI's default build).

use std::path::Path;

use diva_constraints::Constraint;
use diva_core::{BudgetSpec, Diva, DivaConfig, Outcome, Strategy};
use diva_obs::diff::{diff_summaries, DiffConfig};
use diva_obs::{json, Obs};
use diva_relation::Relation;

#[cfg(feature = "alloc-profile")]
#[global_allocator]
static ALLOC: diva_obs::alloc::CountingAlloc = diva_obs::alloc::CountingAlloc::new();

fn workload() -> (Relation, Vec<Constraint>) {
    let rel = diva_datagen::medical(400, 7);
    let sigma = diva_constraints::generators::proportional(&rel, 5, 0.7, 20);
    (rel, sigma)
}

fn run_traced(config: DivaConfig) -> (diva_core::DivaResult, diva_obs::Snapshot) {
    let (rel, sigma) = workload();
    let obs = Obs::enabled();
    let config = DivaConfig { obs: obs.clone(), ..config };
    let out = Diva::new(config).run(&rel, &sigma).expect("workload publishes");
    (out, obs.snapshot())
}

/// The folded flamegraph weights are self-times, so they telescope
/// back to the root `diva.run` duration up to integer-microsecond
/// rounding per span.
#[test]
fn folded_weights_telescope_to_the_run_duration() {
    let (_, snap) = run_traced(DivaConfig::with_k(5).strategy(Strategy::MaxFanOut));
    let folded = snap.folded_stacks();
    assert!(!folded.is_empty(), "run produced no folded stacks");
    let mut total = 0u64;
    for line in folded.lines() {
        let (stack, w) = line.rsplit_once(' ').expect("weight separator");
        assert!(
            stack == "diva.run" || stack.starts_with("diva.run;"),
            "stack not rooted at diva.run: {line}"
        );
        total += w.parse::<u64>().expect("numeric weight");
    }
    let run = snap.spans.iter().find(|s| s.name == "diva.run").expect("diva.run span");
    let slack = snap.spans.len() as u64;
    assert!(
        total <= run.dur_us + slack && total + slack >= run.dur_us,
        "folded weights {total} do not telescope to diva.run {} (±{slack})",
        run.dur_us
    );
}

/// The critical path starts at `diva.run` and descends through real
/// phase spans.
#[test]
fn critical_path_roots_at_diva_run() {
    let (_, snap) = run_traced(DivaConfig::with_k(5).strategy(Strategy::MaxFanOut));
    let path = snap.critical_path();
    assert!(!path.is_empty());
    assert_eq!(path[0].name, "diva.run");
    assert!(path.len() >= 2, "critical path never left the root: {path:?}");
    for hop in &path {
        assert!(hop.self_us <= hop.dur_us, "self-time exceeds duration: {hop:?}");
    }
}

/// A zero deadline forces the degraded path; its `diva.degrade` span
/// must carry the same profiling fields as the exact phases.
#[test]
fn degraded_runs_profile_the_degrade_phase() {
    let config = DivaConfig {
        k: 5,
        budget: BudgetSpec { deadline: Some(std::time::Duration::ZERO), ..BudgetSpec::default() },
        ..DivaConfig::default()
    };
    let (out, snap) = run_traced(config);
    assert!(matches!(out.outcome, Outcome::Degraded { .. }), "zero deadline must degrade");
    let degrade = snap.spans.iter().find(|s| s.name == "diva.degrade").expect("degrade span");
    // Self-time analysis covers the degrade span like any other.
    let folded = snap.folded_stacks();
    assert!(folded.contains("diva.degrade"), "degrade span missing from folded stacks");
    if cfg!(feature = "alloc-profile") {
        let delta = degrade.alloc.expect("degrade span attributes memory");
        assert!(delta.bytes > 0, "building the fallback relation allocates: {delta:?}");
        let alloc = out.stats.alloc.expect("degraded RunStats carry per-phase memory");
        assert!(alloc.degrade.bytes > 0, "PhaseAlloc.degrade not populated: {alloc:?}");
        assert!(alloc.total.bytes >= alloc.degrade.bytes, "total below degrade: {alloc:?}");
        assert!(
            snap.trace_jsonl()
                .lines()
                .any(|l| l.contains("diva.degrade") && l.contains("\"alloc_bytes\":")),
            "trace line for diva.degrade lacks alloc fields"
        );
    } else {
        assert!(degrade.alloc.is_none());
        assert!(out.stats.alloc.is_none());
    }
}

fn baseline_summary() -> json::Value {
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("results/baseline/medical-4k.summary.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read committed baseline {}: {e}", path.display()));
    json::parse(&text).expect("baseline parses")
}

/// Multiplies every number in a JSON tree by `factor` — a uniformly
/// slower/bigger capture for exercising the regression gate.
fn inflate(v: &json::Value, factor: f64) -> json::Value {
    use json::Value;
    match v {
        Value::Num(n) => Value::Num(n * factor),
        Value::Arr(items) => Value::Arr(items.iter().map(|i| inflate(i, factor)).collect()),
        Value::Obj(fields) => {
            Value::Obj(fields.iter().map(|(k, val)| (k.clone(), inflate(val, factor))).collect())
        }
        other => other.clone(),
    }
}

/// The committed baseline compared against itself is clean, and a
/// uniformly 2x-inflated capture trips the gate — the exact contract
/// `trace-diff` enforces in `scripts/check.sh`.
#[test]
fn trace_diff_gate_accepts_self_and_rejects_2x_inflation() {
    let baseline = baseline_summary();
    let cfg = DiffConfig::default();
    let same = diff_summaries(&baseline, &baseline, &cfg).expect("diff runs");
    assert!(same.is_ok(), "baseline vs itself regressed: {:?}", same.regressions);
    assert!(same.compared > 0, "gate compared nothing — baseline schema drifted?");

    let doubled = inflate(&baseline, 2.0);
    let report = diff_summaries(&baseline, &doubled, &cfg).expect("diff runs");
    assert!(!report.is_ok(), "2x-inflated capture passed the gate (compared {})", report.compared);
}
