//! Fault-injection matrix (`--features fault-inject`): every fault
//! class the shim can arm — worker panics, poll slowdowns past the
//! deadline, spurious repair failures, mid-pipeline cancellation —
//! must surface as either a graceful [`Outcome::Degraded`] or a clean
//! error, never a hang, an escaped panic, or a corrupted relation.
//! All faults are deterministic by seed, so each scenario asserts the
//! exact degrade reason and byte-identical reruns.
#![cfg(feature = "fault-inject")]

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use diva_constraints::{generators, Constraint, ConstraintSet};
use diva_core::faults::FaultPlan;
use diva_core::{
    run_portfolio, BudgetSpec, DegradeReason, Diva, DivaConfig, DivaError, DivaResult, Outcome,
    Strategy,
};
use diva_obs::Obs;
use diva_relation::suppress::is_refinement;
use diva_relation::{is_k_anonymous, Relation};

/// The degraded-mode contract every Ok result must satisfy, exact or
/// not: refinement, k-anonymity, every tuple published exactly once,
/// and each constraint either satisfied or fully voided (count 0).
fn assert_contract(rel: &Relation, sigma: &[Constraint], k: usize, out: &DivaResult) {
    assert!(is_refinement(rel, &out.relation, &out.source_rows), "not a refinement");
    assert!(is_k_anonymous(&out.relation, k), "not {k}-anonymous");
    assert_eq!(out.relation.n_rows(), rel.n_rows(), "tuples lost or duplicated");
    let mut src = out.source_rows.clone();
    src.sort_unstable();
    src.dedup();
    assert_eq!(src.len(), rel.n_rows(), "duplicated/missing source rows");
    let set = ConstraintSet::bind(sigma, &out.relation).expect("bind");
    for c in set.constraints() {
        let n = c.count_in(&out.relation);
        assert!(
            n == 0 || (c.lower..=c.upper).contains(&n),
            "{} neither satisfied nor voided: count {n} outside [{}, {}]",
            c.label(),
            c.lower,
            c.upper
        );
    }
}

/// A stable fingerprint of the published relation for determinism
/// assertions.
fn fingerprint(out: &DivaResult) -> String {
    format!("{:?}|{:?}", out.relation, out.outcome)
}

fn workload(rows: usize) -> (Relation, Vec<Constraint>) {
    let rel = diva_datagen::medical(rows, 11);
    let sigma = generators::proportional(&rel, 5, 0.7, 20);
    (rel, sigma)
}

/// Worker panic fault: with every portfolio member armed to panic,
/// the portfolio must contain the panics and fall back to the fully
/// suppressed degraded result — deterministically.
#[test]
fn all_worker_panics_degrade_deterministically() {
    let (rel, sigma) = workload(600);
    let run = || {
        let config = DivaConfig {
            k: 5,
            faults: FaultPlan::seeded(7).panic_workers(100),
            ..DivaConfig::default()
        };
        run_portfolio(&rel, &sigma, &config, 2).expect("panics are contained, not propagated")
    };
    let out = run();
    match &out.outcome {
        Outcome::Degraded { reason: DegradeReason::WorkerPanic { detail } } => {
            assert!(detail.contains("injected fault"), "unexpected panic detail: {detail}");
        }
        other => panic!("expected WorkerPanic degradation, got {other:?}"),
    }
    assert_contract(&rel, &sigma, 5, &out);
    assert_eq!(fingerprint(&out), fingerprint(&run()), "fault outcome not deterministic");
}

/// A partial panic rate leaves at least one healthy member, so the
/// portfolio still returns the exact answer.
#[test]
fn surviving_members_keep_the_portfolio_exact() {
    let (rel, sigma) = workload(600);
    // Seed chosen so FaultPlan::seeded(3).panic_workers(50) spares at
    // least one of the six members (3 strategies × 2 seeds).
    let config = DivaConfig {
        k: 5,
        faults: FaultPlan::seeded(3).panic_workers(50),
        ..DivaConfig::default()
    };
    let out = run_portfolio(&rel, &sigma, &config, 2).expect("a healthy member wins");
    assert!(out.outcome.is_exact(), "healthy member should produce an exact result");
    assert_contract(&rel, &sigma, 5, &out);
}

/// Slowdown fault: polls that sleep past the wall-clock deadline must
/// degrade with `DeadlineExceeded` — the run returns promptly instead
/// of hanging for the whole slowed-down search.
#[test]
fn slow_polls_past_deadline_degrade() {
    let (rel, sigma) = workload(600);
    let config = DivaConfig {
        k: 5,
        budget: BudgetSpec::with_deadline(Duration::from_millis(10)),
        faults: FaultPlan::seeded(1).slow_polls(Duration::from_millis(50)),
        ..DivaConfig::default()
    };
    let out = Diva::new(config).run(&rel, &sigma).expect("deadline degrades, not errors");
    assert!(
        matches!(out.outcome, Outcome::Degraded { reason: DegradeReason::DeadlineExceeded { .. } }),
        "expected DeadlineExceeded, got {:?}",
        out.outcome
    );
    assert_contract(&rel, &sigma, 5, &out);
    assert!(out.stats.budget.is_some(), "budget accounting missing from a budgeted run");
}

/// Repair-budget fault: an instance known to need candidate repairs
/// (calibrated: 17 attempts unbudgeted) degrades with
/// `RepairBudgetExhausted` when the repair budget is zero.
#[test]
fn repair_budget_exhaustion_degrades() {
    let rel = diva_datagen::medical(800, 47);
    let sigma = generators::with_conflict_rate(&rel, 4, 0.5, 5, 14);
    let unbudgeted = DivaConfig { k: 5, strategy: Strategy::MinChoice, ..DivaConfig::default() };
    let exact = Diva::new(unbudgeted).run(&rel, &sigma).expect("instance is satisfiable");
    assert!(exact.stats.coloring.repair_attempts > 0, "instance no longer exercises repair");

    let budgeted = DivaConfig {
        k: 5,
        strategy: Strategy::MinChoice,
        budget: BudgetSpec { repair_budget: Some(0), ..BudgetSpec::default() },
        ..DivaConfig::default()
    };
    let out = Diva::new(budgeted).run(&rel, &sigma).expect("repair exhaustion degrades");
    assert!(
        matches!(
            out.outcome,
            Outcome::Degraded { reason: DegradeReason::RepairBudgetExhausted { .. } }
        ),
        "expected RepairBudgetExhausted, got {:?}",
        out.outcome
    );
    assert_contract(&rel, &sigma, 5, &out);
}

/// Spurious repair failures (every repair refused): the search must
/// absorb them — backtracking around the hole — and either finish the
/// contract or fail with a clean search error. Never a panic or hang.
#[test]
fn spurious_repair_failures_are_absorbed() {
    let rel = diva_datagen::medical(800, 47);
    let sigma = generators::with_conflict_rate(&rel, 4, 0.5, 5, 14);
    let run = || {
        let config = DivaConfig {
            k: 5,
            strategy: Strategy::MinChoice,
            backtrack_limit: Some(200_000),
            faults: FaultPlan::seeded(5).fail_repairs(100),
            ..DivaConfig::default()
        };
        Diva::new(config).run(&rel, &sigma)
    };
    match run() {
        Ok(out) => {
            assert_eq!(out.stats.coloring.repair_successes, 0, "a failed repair succeeded");
            assert_contract(&rel, &sigma, 5, &out);
        }
        Err(DivaError::NoDiverseClustering { .. } | DivaError::SearchBudgetExhausted { .. }) => {} // a clean search failure is acceptable with repair disabled
        Err(e) => panic!("unexpected error class: {e}"),
    }
    // Deterministic by seed: same plan, same outcome.
    assert_eq!(
        run().map(|o| fingerprint(&o)).map_err(|e| e.to_string()),
        run().map(|o| fingerprint(&o)).map_err(|e| e.to_string()),
    );
}

/// The regression the satellite issue calls out: cancellation arriving
/// exactly between clustering and suppress. `run_cancellable` must
/// abort with [`DivaError::Cancelled`] before suppressing — the trace
/// shows clustering ran and nothing after it did.
#[test]
fn cancellation_between_clustering_and_suppress_aborts_cleanly() {
    let (rel, sigma) = workload(400);
    let obs = Obs::enabled();
    let config = DivaConfig {
        k: 5,
        obs: obs.clone(),
        faults: FaultPlan::seeded(0).cancel_at_phase("clustering"),
        ..DivaConfig::default()
    };
    let cancel = Arc::new(AtomicBool::new(false));
    let err = Diva::new(config).run_cancellable(&rel, &sigma, &cancel).unwrap_err();
    assert_eq!(err, DivaError::Cancelled);

    let trace = obs.snapshot().trace_jsonl();
    let has = |name: &str| trace.contains(&format!("\"name\":\"{name}\""));
    assert!(has("diva.clustering"), "clustering should have completed before the boundary");
    assert!(!has("diva.suppress"), "suppress ran after cancellation");
    assert!(!has("diva.anonymize"), "anonymize ran after cancellation");
    assert!(!has("diva.integrate"), "integrate ran after cancellation");
}

/// The same phase fault without a cancellation token is inert: plain
/// `run` has no token to set, so the pipeline completes exactly.
#[test]
fn phase_fault_without_token_is_inert() {
    let (rel, sigma) = workload(400);
    let config = DivaConfig {
        k: 5,
        faults: FaultPlan::seeded(0).cancel_at_phase("clustering"),
        ..DivaConfig::default()
    };
    let out = Diva::new(config).run(&rel, &sigma).expect("no token to trip");
    assert!(out.outcome.is_exact());
    assert_contract(&rel, &sigma, 5, &out);
}

/// Degradation reaches the obs layer: the budget-exhaustion counter
/// and the degrade span both record the reason.
#[test]
fn degraded_runs_are_visible_in_the_trace() {
    let (rel, sigma) = workload(600);
    let obs = Obs::enabled();
    let config = DivaConfig {
        k: 5,
        obs: obs.clone(),
        budget: BudgetSpec::with_deadline(Duration::ZERO),
        ..DivaConfig::default()
    };
    let out = Diva::new(config).run(&rel, &sigma).expect("degrades");
    assert!(!out.outcome.is_exact());
    let snapshot = obs.snapshot();
    let trace = snapshot.trace_jsonl();
    assert!(trace.contains("\"name\":\"diva.degrade\""), "degrade span missing:\n{trace}");
    assert!(trace.contains("deadline"), "degrade reason missing from trace");
    let summary = snapshot.summary_json();
    assert!(
        summary.contains("budget.exhausted.deadline"),
        "budget-exhaustion counter missing:\n{summary}"
    );
}

/// Stall watchdog escalation: with polls slowed far past the sampling
/// window, the node counter freezes mid-search; the watchdog must
/// flag the stall, escalate through the board's degrade request, and
/// the search must surface it as a graceful `Stalled` degradation —
/// not an error, a hang, or a broken relation.
#[test]
fn stall_watchdog_escalation_degrades_a_frozen_search() {
    // ~10^5-assignment search: plenty of poll points for the injected
    // sleep to freeze the published counter between.
    let rel = diva_datagen::medical(2000, 7);
    let sigma = generators::proportional(&rel, 10, 0.7, 20);
    let board = diva_obs::live::ProgressBoard::enabled();
    let sampler = diva_obs::live::Sampler::spawn(
        &board,
        &Obs::disabled(),
        diva_obs::live::SamplerConfig {
            interval: Duration::from_millis(10),
            stall_periods: 3,
            escalate: true,
            ..diva_obs::live::SamplerConfig::default()
        },
        None,
    );
    let config = DivaConfig {
        k: 5,
        board: board.clone(),
        faults: FaultPlan::seeded(1).slow_polls(Duration::from_millis(300)),
        ..DivaConfig::default()
    };
    let out = Diva::new(config).run(&rel, &sigma).expect("stall degrades, not errors");
    let log = sampler.log();
    sampler.stop();
    match &out.outcome {
        Outcome::Degraded { reason: DegradeReason::Stalled { nodes } } => {
            assert!(*nodes > 0, "stall must be reported after the search expanded nodes");
        }
        other => panic!("expected Stalled degradation, got {other:?}"),
    }
    assert_contract(&rel, &sigma, 5, &out);
    // The live flag un-latches once the degraded pipeline resumes
    // making progress; the episode count and the latched escalation
    // request are the durable evidence.
    assert!(log.stalls_flagged() >= 1, "sampler never flagged the stall");
    assert!(board.degrade_requested());
    let snap = board.read().expect("enabled board snapshots");
    assert_eq!(snap.phase, diva_obs::live::Phase::Done, "degraded runs still publish completion");
}

/// The same watchdog, armed identically, must stay quiet on a healthy
/// (fault-free) run: no stall flags, no escalation, exact outcome.
#[test]
fn stall_watchdog_stays_quiet_on_a_healthy_run() {
    let (rel, sigma) = workload(600);
    let board = diva_obs::live::ProgressBoard::enabled();
    let sampler = diva_obs::live::Sampler::spawn(
        &board,
        &Obs::disabled(),
        diva_obs::live::SamplerConfig {
            interval: Duration::from_millis(10),
            stall_periods: 3,
            escalate: true,
            ..diva_obs::live::SamplerConfig::default()
        },
        None,
    );
    let out = Diva::new(DivaConfig { k: 5, board: board.clone(), ..DivaConfig::default() })
        .run(&rel, &sigma)
        .expect("healthy run solves");
    sampler.stop();
    assert!(out.outcome.is_exact(), "watchdog must not perturb a healthy run");
    assert!(!board.stalled());
    assert!(!board.degrade_requested());
}
