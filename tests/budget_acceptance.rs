//! The budget tentpole's acceptance run, in its own test binary so
//! the wall-clock assertion is not contended by sibling tests (cargo
//! runs test binaries sequentially; this box may be single-core).
//!
//! A tight deadline on the medical-4k workload must come back
//! *degraded but valid* promptly — within 2× the deadline in release
//! builds (the advertised bound; debug builds get 4× for profile
//! slack) — instead of running the full exact search or erroring out.
//!
//! Host speed varies by an order of magnitude across the machines this
//! suite runs on, so the deadline is calibrated rather than fixed: an
//! unbudgeted run is timed first and the deadline is set to a quarter
//! of it (capped at 50 ms). If the host solves the instance so fast
//! that even that is under the 5 ms floor — where degrade-path
//! materialization would dominate the bound — the instance is scaled
//! up until the exact run is comfortably slower than the deadline.

use std::time::Duration;

use diva_constraints::{generators, Constraint, ConstraintSet};
use diva_core::{BudgetSpec, DegradeReason, Diva, DivaConfig, Outcome};
use diva_obs::Stopwatch;
use diva_relation::is_k_anonymous;
use diva_relation::suppress::is_refinement;
use diva_relation::Relation;

/// The acceptance workload at a given scale (min-freq tracks rows so
/// the constraint shape stays comparable across sizes).
fn instance(rows: usize) -> (Relation, Vec<Constraint>) {
    let rel = diva_datagen::medical(rows, 29);
    let sigma = generators::proportional(&rel, 5, 0.7, rows / 50);
    (rel, sigma)
}

#[test]
fn medical_4k_deadline_degrades_promptly_and_validly() {
    let cap = Duration::from_millis(50);
    let floor = Duration::from_millis(5);
    let mut chosen = None;
    for rows in [4_000usize, 16_000, 64_000] {
        let (rel, sigma) = instance(rows);
        let sw = Stopwatch::start();
        Diva::new(DivaConfig { k: 8, ..DivaConfig::default() })
            .run(&rel, &sigma)
            .expect("acceptance instance must be exactly solvable");
        let exact = sw.elapsed();
        let deadline = cap.min(exact / 4);
        if deadline >= floor {
            chosen = Some((rel, sigma, deadline));
            break;
        }
    }
    let (rel, sigma, deadline) =
        chosen.expect("64k rows solved exactly in under 20ms — calibration floor unreachable");

    let config =
        DivaConfig { k: 8, budget: BudgetSpec::with_deadline(deadline), ..DivaConfig::default() };
    // Best-of-3 to shed scheduler noise; the fastest rep is the
    // honest latency of the degrade path.
    let diva = Diva::new(config);
    let mut elapsed = Duration::MAX;
    let mut out = None;
    for _ in 0..3 {
        let sw = Stopwatch::start();
        let o = diva.run(&rel, &sigma).expect("deadline degrades, not errors");
        elapsed = elapsed.min(sw.elapsed());
        out = Some(o);
    }
    let out = out.expect("three reps ran");
    let bound = deadline * if cfg!(debug_assertions) { 4 } else { 2 };
    assert!(
        elapsed <= bound,
        "degraded run took {elapsed:?} (best of 3), bound {bound:?} (deadline {deadline:?})"
    );
    assert!(
        matches!(out.outcome, Outcome::Degraded { reason: DegradeReason::DeadlineExceeded { .. } }),
        "expected DeadlineExceeded, got {:?}",
        out.outcome
    );
    // The degraded result still honours the hard guarantees.
    assert!(is_refinement(&rel, &out.relation, &out.source_rows));
    assert!(is_k_anonymous(&out.relation, 8));
    assert_eq!(out.relation.n_rows(), rel.n_rows());
    let set = ConstraintSet::bind(&sigma, &out.relation).expect("bind");
    for c in set.constraints() {
        let n = c.count_in(&out.relation);
        assert!(
            n == 0 || (c.lower..=c.upper).contains(&n),
            "{} neither satisfied nor voided",
            c.label()
        );
    }
    let usage = out.stats.budget.expect("budget accounting attached");
    assert!(usage.elapsed >= deadline, "degraded before the deadline actually passed");
}
