//! Workspace-level live-telemetry tests: a real pipeline run scraped
//! mid-flight over TCP (the `--stats-addr` wiring minus the CLI), and
//! schema checks on both exposition routes against the finished run.

use diva_constraints::Constraint;
use diva_core::{Diva, DivaConfig, Strategy};
use diva_obs::live::{Phase, ProgressBoard, Sampler, SamplerConfig};
use diva_obs::serve::{http_get, parse_prometheus, StatsServer};
use diva_obs::{json, Obs};
use diva_relation::Relation;
use std::time::Duration;

/// A workload whose colouring search is long enough (~10^5 nodes in
/// debug builds) that mid-run snapshots are observable, yet completes
/// in seconds.
fn sustained_workload() -> (Relation, Vec<Constraint>) {
    let rel = diva_datagen::medical(2000, 7);
    let sigma = diva_constraints::generators::proportional(&rel, 10, 0.7, 20);
    (rel, sigma)
}

fn prom_value(samples: &[diva_obs::serve::PromSample], name: &str) -> Option<f64> {
    samples.iter().find(|s| s.name == name).map(|s| s.value)
}

/// Runs the pipeline on one thread while scraping `/metrics` over real
/// TCP from another: at least one scrape must observe the node counter
/// strictly between zero and the finished search's total — the
/// in-flight evidence the check.sh `live` stage demands of the CLI.
#[test]
fn mid_run_scrape_sees_the_search_in_flight() {
    let (rel, sigma) = sustained_workload();
    let board = ProgressBoard::enabled();
    let sampler = Sampler::spawn(
        &board,
        &Obs::disabled(),
        SamplerConfig { interval: Duration::from_millis(5), ..SamplerConfig::default() },
        None,
    );
    let server =
        StatsServer::bind("127.0.0.1:0", board.clone(), sampler.log()).expect("bind port 0");
    let addr = server.local_addr();
    let config = DivaConfig {
        k: 5,
        strategy: Strategy::MaxFanOut,
        board: board.clone(),
        ..DivaConfig::default()
    };
    let mut observed: Vec<u64> = Vec::new();
    let result = std::thread::scope(|s| {
        let run = s.spawn(|| Diva::new(config).run(&rel, &sigma));
        while !run.is_finished() {
            if let Ok((status, body)) = http_get(&addr, "/metrics", Duration::from_millis(500)) {
                assert!(status.contains("200"), "mid-run scrape failed: {status}");
                let samples = parse_prometheus(&body).expect("exposition parses");
                let nodes = prom_value(&samples, "diva_nodes_expanded_total")
                    .expect("node family present") as u64;
                observed.push(nodes);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        run.join().expect("run thread panicked")
    })
    .expect("workload solves");
    let final_nodes = result.stats.coloring.assignments_tried;
    assert!(final_nodes > 1_000, "workload too small to scrape meaningfully: {final_nodes}");
    assert!(
        observed.iter().any(|&n| n > 0 && n < final_nodes),
        "no scrape caught the search in flight (final {final_nodes}, observed {observed:?})"
    );
    assert!(
        observed.windows(2).all(|w| w[0] <= w[1]),
        "scraped node counts must be monotone: {observed:?}"
    );

    // After the run both routes still serve the final state: the
    // Prometheus text and the summary-JSON document must agree with
    // the search's own statistics.
    let (status, body) = http_get(&addr, "/metrics", Duration::from_millis(500)).expect("GET");
    assert!(status.contains("200"));
    let samples = parse_prometheus(&body).expect("exposition parses");
    assert_eq!(prom_value(&samples, "diva_nodes_expanded_total"), Some(final_nodes as f64));
    let phase = samples
        .iter()
        .find(|s| s.name == "diva_phase")
        .and_then(|s| s.label("phase"))
        .expect("phase label");
    assert_eq!(phase, Phase::Done.as_str());

    let (status, body) = http_get(&addr, "/stats.json", Duration::from_millis(500)).expect("GET");
    assert!(status.contains("200"));
    let v = json::parse(&body).expect("summary document parses");
    for section in ["spans", "counters", "gauges", "histograms"] {
        assert!(v.get(section).is_some(), "missing {section} section");
    }
    let live_nodes = v
        .get("counters")
        .and_then(|c| c.get("live.nodes_expanded"))
        .and_then(json::Value::as_num)
        .expect("live.nodes_expanded counter");
    assert_eq!(live_nodes as u64, final_nodes);
    server.shutdown();
    sampler.stop();
}
