//! Cross-crate pipeline tests: every dataset generator × every
//! strategy × every baseline, validating the (k, Σ)-anonymization
//! contract end to end.

use diva_anonymize::{Anonymizer, KMember, Mondrian, Oka};
use diva_constraints::{generators, Constraint, ConstraintSet};
use diva_core::{Diva, DivaConfig, DivaError, Strategy};
use diva_datagen::Dist;
use diva_relation::suppress::is_refinement;
use diva_relation::{is_k_anonymous, Relation};

fn check_contract(rel: &Relation, sigma: &[Constraint], k: usize, strategy: Strategy) {
    // Debug-profile searches get a small budget so tests stay fast;
    // only the naive Basic strategy is allowed to exhaust it (that is
    // the paper's own finding — Fig. 4a shows Basic exploding).
    let config = DivaConfig { k, strategy, backtrack_limit: Some(10_000), ..DivaConfig::default() };
    let out = match Diva::new(config).run(rel, sigma) {
        Ok(out) => out,
        Err(DivaError::SearchBudgetExhausted { .. }) if strategy == Strategy::Basic => {
            return; // acceptable for the naive variant
        }
        Err(e) => panic!("{strategy} k={k}: {e}"),
    };
    // (1) R ⊑ R′.
    assert!(is_refinement(rel, &out.relation, &out.source_rows), "{strategy}: not a refinement");
    // (2) k-anonymous.
    assert!(is_k_anonymous(&out.relation, k), "{strategy}: not {k}-anonymous");
    // (3) R′ |= Σ.
    let set = ConstraintSet::bind(sigma, &out.relation).expect("bind");
    assert!(set.satisfied_by(&out.relation), "{strategy}: Σ violated");
    // All tuples published exactly once.
    assert_eq!(out.relation.n_rows(), rel.n_rows());
    let mut src = out.source_rows.clone();
    src.sort_unstable();
    src.dedup();
    assert_eq!(src.len(), rel.n_rows(), "{strategy}: duplicated/missing tuples");
}

#[test]
fn medical_all_strategies() {
    let rel = diva_datagen::medical(1_500, 11);
    let sigma = generators::with_conflict_rate(&rel, 6, 0.4, 5, 3);
    for strategy in Strategy::all() {
        check_contract(&rel, &sigma, 5, strategy);
    }
}

#[test]
fn popsyn_all_distributions() {
    for dist in [Dist::Uniform, Dist::zipf_default(), Dist::gaussian_default()] {
        let rel = diva_datagen::popsyn(4_000, dist, 13);
        // Generator seed chosen so the instance is satisfiable under the
        // vendored RNG's streams (they differ from upstream rand's).
        let sigma = generators::with_conflict_rate(&rel, 6, 0.3, 10, 6);
        check_contract(&rel, &sigma, 10, Strategy::MaxFanOut);
    }
}

#[test]
fn census_slice_minchoice() {
    let rel = diva_datagen::census(5_000, 17);
    let sigma = generators::with_conflict_rate(&rel, 8, 0.4, 10, 7);
    check_contract(&rel, &sigma, 10, Strategy::MinChoice);
}

#[test]
fn pantheon_slice_basic() {
    let rel = diva_datagen::pantheon(19).head(4_000);
    let sigma = generators::with_conflict_rate(&rel, 5, 0.5, 8, 9);
    check_contract(&rel, &sigma, 8, Strategy::Basic);
}

#[test]
fn credit_full_dataset() {
    // Dataset seed chosen so the instance is satisfiable under the
    // vendored RNG's streams (they differ from upstream rand's).
    let rel = diva_datagen::credit(5);
    let sigma = generators::with_conflict_rate(&rel, 10, 0.4, 10, 11);
    for strategy in Strategy::all() {
        check_contract(&rel, &sigma, 10, strategy);
    }
}

/// The tentpole acceptance run for the runtime validators: with
/// `--features strict-invariants` the kernel `validate()` checks fire
/// at every pipeline phase boundary on the medical-4k workload and the
/// full (k, Σ)-anonymization contract still holds end to end.
#[cfg(feature = "strict-invariants")]
#[test]
fn medical_4k_strict_invariants_end_to_end() {
    let rel = diva_datagen::medical(4_000, 29);
    let sigma = generators::proportional(&rel, 5, 0.7, 80);
    check_contract(&rel, &sigma, 8, Strategy::MaxFanOut);
}

#[test]
fn proportional_constraints_pipeline() {
    let rel = diva_datagen::medical(2_000, 29);
    let sigma = generators::proportional(&rel, 5, 0.7, 40);
    check_contract(&rel, &sigma, 8, Strategy::MaxFanOut);
}

#[test]
fn min_frequency_constraints_pipeline() {
    let rel = diva_datagen::medical(2_000, 31);
    let sigma = generators::min_frequency(&rel, 6, 0.3, 40);
    check_contract(&rel, &sigma, 8, Strategy::MinChoice);
}

#[test]
fn all_baselines_as_anonymize_backend() {
    let rel = diva_datagen::medical(1_000, 37);
    // Generator seed chosen so the instance is satisfiable under the
    // vendored RNG's streams (they differ from upstream rand's).
    let sigma = generators::with_conflict_rate(&rel, 4, 0.3, 5, 14);
    let backends: Vec<Box<dyn Anonymizer + Send + Sync>> =
        vec![Box::new(KMember::default()), Box::new(Oka::default()), Box::new(Mondrian)];
    for backend in backends {
        let out = Diva::with_anonymizer(DivaConfig::with_k(5), backend)
            .run(&rel, &sigma)
            .expect("pipeline succeeds");
        assert!(is_k_anonymous(&out.relation, 5));
        let set = ConstraintSet::bind(&sigma, &out.relation).unwrap();
        assert!(set.satisfied_by(&out.relation));
    }
}

#[test]
fn growing_sigma_monotonically_costs_accuracy() {
    // Fig. 4b's shape on a small instance: more constraints, more
    // suppression (allowing small non-monotonic wiggle).
    let rel = diva_datagen::census(4_000, 41);
    let mut last_acc = f64::INFINITY;
    let mut worst_jump: f64 = 0.0;
    for n in [2usize, 6, 10] {
        let sigma = generators::with_conflict_rate(&rel, n, 0.4, 10, 15);
        let out = Diva::new(DivaConfig::with_k(10)).run(&rel, &sigma).expect("satisfiable");
        let acc = diva_metrics::star_accuracy(&out.relation);
        worst_jump = worst_jump.max(acc - last_acc);
        last_acc = acc;
    }
    assert!(worst_jump < 0.10, "accuracy rose sharply with |Σ| ({worst_jump:.3})");
}

#[test]
fn unsatisfiable_and_error_paths() {
    let rel = diva_datagen::medical(500, 43);
    // Demand more of a value than exists.
    let eth = rel.schema().col_of("ETH");
    let (code, name) = rel.dict(eth).iter().next().map(|(c, n)| (c, n.to_string())).unwrap();
    let f = rel.column(eth).iter().filter(|&&c| c == code).count();
    let sigma = vec![Constraint::single("ETH", name, f + 1, f + 100)];
    let err = Diva::new(DivaConfig::with_k(5)).run(&rel, &sigma).unwrap_err();
    assert!(matches!(err, DivaError::NoDiverseClustering { .. }), "{err}");

    // k = 0 rejected.
    assert_eq!(Diva::new(DivaConfig::with_k(0)).run(&rel, &[]).unwrap_err(), DivaError::InvalidK);

    // Unknown attribute rejected.
    let sigma = vec![Constraint::single("NOT_AN_ATTR", "x", 1, 2)];
    assert!(matches!(
        Diva::new(DivaConfig::with_k(5)).run(&rel, &sigma).unwrap_err(),
        DivaError::Constraint(_)
    ));
}

#[test]
fn empty_relation_with_empty_sigma() {
    let rel = Relation::empty(diva_relation::fixtures::medical_schema());
    let out = Diva::new(DivaConfig::with_k(3)).run(&rel, &[]).expect("empty ok");
    assert_eq!(out.relation.n_rows(), 0);
}

#[test]
fn duplicate_constraints_are_shared() {
    // Identical constraints must not double-consume tuples.
    let rel = diva_datagen::medical(800, 47);
    let eth = rel.schema().col_of("ETH");
    let (_, name) = rel.dict(eth).iter().next().unwrap();
    let sigma =
        vec![Constraint::single("ETH", name, 10, 400), Constraint::single("ETH", name, 10, 400)];
    let out = Diva::new(DivaConfig::with_k(5)).run(&rel, &sigma).expect("shareable");
    let set = ConstraintSet::bind(&sigma, &out.relation).unwrap();
    assert!(set.satisfied_by(&out.relation));
}
