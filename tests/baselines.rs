//! Integration tests of the three k-anonymization baselines across
//! the dataset generators: correctness of the k-anonymity contract
//! and the expected quality ordering.

use diva_anonymize::{Anonymizer, KMember, Mondrian, Oka};
use diva_datagen::Dist;
use diva_relation::suppress::is_refinement;
use diva_relation::{is_k_anonymous, qi_groups, Relation};

fn all_baselines() -> Vec<Box<dyn Anonymizer>> {
    vec![Box::new(KMember::default()), Box::new(Oka::default()), Box::new(Mondrian)]
}

fn check_baseline(rel: &Relation, k: usize, algo: &dyn Anonymizer) {
    let out = algo.anonymize(rel, k);
    assert!(
        is_k_anonymous(&out.relation, k),
        "{} not {k}-anonymous on {} rows",
        algo.name(),
        rel.n_rows()
    );
    assert!(is_refinement(rel, &out.relation, &out.source_rows), "{}", algo.name());
    assert_eq!(out.relation.n_rows(), rel.n_rows());
}

#[test]
fn every_baseline_on_every_generator() {
    let datasets: Vec<Relation> = vec![
        diva_datagen::medical(600, 3),
        diva_datagen::credit(3),
        diva_datagen::popsyn(2_000, Dist::Uniform, 3),
        diva_datagen::census(2_000, 3),
        diva_datagen::pantheon(3).head(2_000),
    ];
    for rel in &datasets {
        for algo in all_baselines() {
            for k in [2, 10] {
                check_baseline(rel, k, algo.as_ref());
            }
        }
    }
}

#[test]
fn group_sizes_respect_k_exactly() {
    let rel = diva_datagen::medical(1_000, 5);
    for algo in all_baselines() {
        for k in [5, 25] {
            let out = algo.anonymize(&rel, k);
            let g = qi_groups(&out.relation);
            assert!(g.min_group_size().unwrap() >= k, "{} min group < {k}", algo.name());
        }
    }
}

#[test]
fn kmember_quality_leads_on_skewed_data() {
    // On Zipf-skewed data the greedy k-member typically suppresses the
    // least, Mondrian the most (its categorical median splits are
    // coarse) — the ordering the paper's Fig. 5a shows.
    let rel = diva_datagen::popsyn(3_000, Dist::zipf_default(), 7);
    let k = 10;
    let km = KMember::default().anonymize(&rel, k).relation.star_count();
    let mo = Mondrian.anonymize(&rel, k).relation.star_count();
    assert!(km < mo, "k-member {km} ★ should beat Mondrian {mo} ★");
}

#[test]
fn stars_grow_with_k() {
    let rel = diva_datagen::medical(800, 9);
    for algo in all_baselines() {
        let s5 = algo.anonymize(&rel, 5).relation.star_count();
        let s40 = algo.anonymize(&rel, 40).relation.star_count();
        assert!(
            s40 >= s5,
            "{}: suppression should not shrink as k grows ({s5} -> {s40})",
            algo.name()
        );
    }
}

#[test]
fn baselines_handle_degenerate_inputs() {
    let rel = diva_datagen::medical(30, 11);
    for algo in all_baselines() {
        // k larger than the relation: single cluster (not k-anonymous,
        // but total).
        let out = algo.anonymize(&rel, 100);
        assert_eq!(out.relation.n_rows(), 30);
        assert_eq!(qi_groups(&out.relation).len(), 1);
        // Exactly k rows.
        let small = rel.head(5);
        let out = algo.anonymize(&small, 5);
        assert!(is_k_anonymous(&out.relation, 5), "{}", algo.name());
    }
}

#[test]
fn subset_clustering_is_supported() {
    // DIVA hands each baseline a subset of rows; verify directly.
    let rel = diva_datagen::medical(200, 13);
    let rows: Vec<usize> = (0..200).step_by(3).collect();
    for algo in all_baselines() {
        let clusters = algo.cluster(&rel, &rows, 4);
        let mut seen: Vec<usize> = clusters.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, rows, "{}", algo.name());
        for c in &clusters {
            assert!(c.len() >= 4, "{}", algo.name());
        }
    }
}
