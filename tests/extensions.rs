//! Integration tests for the extensions: generalization recoding,
//! ℓ-diversity, query utility, and the parallel portfolio — all on
//! top of full DIVA runs.

use std::collections::HashMap;

use diva_anonymize::is_l_diverse;
use diva_constraints::{Constraint, ConstraintSet};
use diva_core::{run_portfolio, Diva, DivaConfig, Strategy};
use diva_metrics::{evaluate_utility, QueryWorkload};
use diva_relation::generalize::generalize_output;
use diva_relation::{is_k_anonymous, Hierarchy};

fn medical_hierarchies() -> HashMap<String, Hierarchy> {
    let mut m = HashMap::new();
    m.insert("AGE".to_string(), Hierarchy::interval(0, 89, &[10, 30]));
    m.insert(
        "PRV".to_string(),
        Hierarchy::from_chains(&[
            vec!["BC", "West"],
            vec!["AB", "West"],
            vec!["SK", "West"],
            vec!["MB", "West"],
            vec!["ON", "Central"],
            vec!["QC", "Central"],
            vec!["NS", "Atlantic"],
            vec!["NB", "Atlantic"],
        ]),
    );
    m
}

#[test]
fn generalized_diva_output_keeps_all_guarantees() {
    let rel = diva_datagen::medical(2_000, 51);
    let k = 8;
    let sigma = diva_constraints::generators::proportional(&rel, 3, 0.6, 10 * k);
    let out = Diva::new(DivaConfig::with_k(k)).run(&rel, &sigma).expect("satisfiable");
    let gen = generalize_output(
        &rel,
        &out.relation,
        &out.groups,
        &out.source_rows,
        &medical_hierarchies(),
    );
    // Guarantees survive recoding.
    assert!(is_k_anonymous(&gen.relation, k));
    let set = ConstraintSet::bind(&sigma, &gen.relation).unwrap();
    assert!(set.satisfied_by(&gen.relation), "Σ must survive generalization");
    // Information loss can only improve.
    assert!(gen.relation.star_count() <= out.relation.star_count());
    assert!(gen.ncp_mean <= diva_metrics::star_ratio(&out.relation) + 1e-12);
}

#[test]
fn l_diversity_with_constraints_end_to_end() {
    let rel = diva_datagen::medical(1_200, 53);
    let k = 6;
    let l = 2;
    let sigma = diva_constraints::generators::proportional(&rel, 2, 0.7, 10 * k);
    let out = Diva::new(DivaConfig::with_k(k).l_diversity(l))
        .run(&rel, &sigma)
        .expect("8 diagnosis values make 2-diversity easy");
    assert!(is_k_anonymous(&out.relation, k));
    assert!(is_l_diverse(&out.relation, l));
    let set = ConstraintSet::bind(&sigma, &out.relation).unwrap();
    assert!(set.satisfied_by(&out.relation));
}

#[test]
fn utility_ordering_diva_vs_full_suppression() {
    let rel = diva_datagen::medical(1_500, 57);
    let k = 10;
    let out = Diva::new(DivaConfig::with_k(k)).run(&rel, &[]).expect("no constraints");
    let workload = QueryWorkload::random(&rel, 100, 3);
    let u_diva = evaluate_utility(&rel, &out.relation, &workload);
    // Fully suppressed straw man.
    let all: Vec<usize> = (0..rel.n_rows()).collect();
    let total = diva_relation::suppress::suppress_clustering(&rel, &[all]);
    let u_total = evaluate_utility(&rel, &total.relation, &workload);
    assert!(u_diva.mean_relative_error < u_total.mean_relative_error);
    assert!(u_total.mean_relative_error > 0.99);
}

#[test]
fn portfolio_and_single_run_agree_on_satisfiability() {
    let rel = diva_datagen::medical(800, 59);
    let sigma = vec![Constraint::single("ETH", "Caucasian", 20, 800)];
    let single = Diva::new(DivaConfig::with_k(5).strategy(Strategy::MinChoice))
        .run(&rel, &sigma)
        .expect("satisfiable");
    let port = run_portfolio(&rel, &sigma, &DivaConfig::with_k(5), 1).expect("satisfiable");
    assert!(is_k_anonymous(&single.relation, 5));
    assert!(is_k_anonymous(&port.relation, 5));
}

#[test]
fn generalization_with_forced_repairs_stays_consistent() {
    // Force Integrate repairs via a tight upper bound, then verify
    // generalization does not resurrect the suppressed value.
    let rel = diva_datagen::medical(1_000, 61);
    let k = 5;
    let eth = rel.schema().col_of("ETH");
    let (code, name) = {
        let mut best = (0u32, 0usize);
        for (c, _) in rel.dict(eth).iter() {
            let f = rel.column(eth).iter().filter(|&&x| x == c).count();
            if f > best.1 {
                best = (c, f);
            }
        }
        (best.0, rel.dict(eth).decode(best.0).unwrap().to_string())
    };
    let f = rel.column(eth).iter().filter(|&&x| x == code).count();
    // Cap the head ethnicity at half its frequency: Integrate must
    // repair whatever k-member retains above the cap.
    let sigma = vec![Constraint::single("ETH", &name, 0, f / 2)];
    let out = Diva::new(DivaConfig::with_k(k)).run(&rel, &sigma).expect("upper-bound only");
    let set = ConstraintSet::bind(&sigma, &out.relation).unwrap();
    assert!(set.satisfied_by(&out.relation));
    let gen = generalize_output(
        &rel,
        &out.relation,
        &out.groups,
        &out.source_rows,
        &medical_hierarchies(),
    );
    let gen_set = ConstraintSet::bind(&sigma, &gen.relation).unwrap();
    assert!(
        gen_set.satisfied_by(&gen.relation),
        "generalization must not resurrect repaired values"
    );
}
