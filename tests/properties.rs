//! Property-based tests of the full (k, Σ)-anonymization contract on
//! randomized small relations and constraint sets.

use std::sync::Arc;

use diva_constraints::{Constraint, ConstraintSet};
use diva_core::{
    components, ConstraintGraph, Diva, DivaConfig, DivaError, LVariant, Strategy as DivaStrategy,
};
use diva_metrics::audit::{audit, Audit, AuditSpec, ModelKind};
use diva_relation::suppress::is_refinement;
use diva_relation::{is_k_anonymous, Attribute, Relation, RelationBuilder, Schema, STAR_CODE};
use proptest::prelude::*;

/// A random relation with 2–3 QI attributes over small domains and
/// 12–60 rows (collision-heavy so constraints have real targets).
fn arb_relation() -> impl Strategy<Value = Relation> {
    (2usize..4, 12usize..60).prop_flat_map(|(n_qi, n_rows)| {
        let row = proptest::collection::vec(0u8..4, n_qi);
        proptest::collection::vec(row, n_rows).prop_map(move |rows| {
            let mut attrs: Vec<Attribute> =
                (0..n_qi).map(|i| Attribute::quasi(format!("Q{i}"))).collect();
            attrs.push(Attribute::sensitive("S"));
            let schema = Arc::new(Schema::new(attrs));
            let mut b = RelationBuilder::new(schema);
            for (i, r) in rows.iter().enumerate() {
                let mut vals: Vec<String> = r.iter().map(|v| format!("v{v}")).collect();
                vals.push(format!("s{}", i % 5));
                b.push_row(&vals);
            }
            b.finish()
        })
    })
}

/// Random satisfiable-leaning constraints: bounds derived from actual
/// value frequencies.
fn arb_sigma(rel: &Relation, picks: &[(usize, usize)], k: usize) -> Vec<Constraint> {
    let qi = rel.schema().qi_cols();
    picks
        .iter()
        .filter_map(|&(ci, vi)| {
            let col = qi[ci % qi.len()];
            let dict = rel.dict(col);
            if dict.is_empty() {
                return None;
            }
            let code = (vi % dict.len()) as u32;
            let value = dict.decode(code)?.to_string();
            let f = rel.column(col).iter().filter(|&&c| c == code).count();
            if f < k {
                return None;
            }
            Some(Constraint::single(rel.schema().attribute(col).name(), value, k, f))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whenever DIVA succeeds, its output honours the whole contract:
    /// refinement, k-anonymity, Σ-satisfaction, tuple preservation.
    #[test]
    fn diva_success_implies_full_contract(
        rel in arb_relation(),
        picks in proptest::collection::vec((0usize..4, 0usize..4), 1..4),
        k in 2usize..4,
        strategy_idx in 0usize..3,
    ) {
        let sigma = arb_sigma(&rel, &picks, k);
        let strategy = DivaStrategy::all()[strategy_idx];
        let diva = Diva::new(DivaConfig::with_k(k).strategy(strategy));
        match diva.run(&rel, &sigma) {
            Ok(out) => {
                prop_assert!(is_refinement(&rel, &out.relation, &out.source_rows));
                prop_assert!(is_k_anonymous(&out.relation, k));
                let set = ConstraintSet::bind(&sigma, &out.relation).unwrap();
                prop_assert!(set.satisfied_by(&out.relation));
                prop_assert_eq!(out.relation.n_rows(), rel.n_rows());
            }
            Err(DivaError::NoDiverseClustering { .. })
            | Err(DivaError::ResidualTooSmall { .. })
            | Err(DivaError::IntegrateFailed { .. })
            | Err(DivaError::SearchBudgetExhausted { .. }) => {
                // Failure is allowed — bounded search on random inputs —
                // but it must never panic or return an invalid relation.
            }
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    /// With no constraints DIVA always succeeds (plain anonymization)
    /// for k ≤ |R|.
    #[test]
    fn empty_sigma_always_succeeds(rel in arb_relation(), k in 1usize..6) {
        prop_assume!(k <= rel.n_rows());
        let out = Diva::new(DivaConfig::with_k(k)).run(&rel, &[]).unwrap();
        prop_assert!(is_k_anonymous(&out.relation, k));
        prop_assert_eq!(out.relation.n_rows(), rel.n_rows());
    }

    /// DIVA is deterministic for a fixed config.
    #[test]
    fn deterministic_given_config(
        rel in arb_relation(),
        picks in proptest::collection::vec((0usize..4, 0usize..4), 1..3),
    ) {
        let sigma = arb_sigma(&rel, &picks, 2);
        let run = || {
            Diva::new(DivaConfig::with_k(2).seed(99))
                .run(&rel, &sigma)
                .map(|o| {
                    (0..o.relation.n_rows())
                        .map(|r| {
                            (0..o.relation.schema().arity())
                                .map(|c| o.relation.code(r, c))
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                })
                .map_err(|e| e.to_string())
        };
        prop_assert_eq!(run(), run());
    }

    /// The degraded-mode contract: under any node budget (including
    /// one so small the search degrades immediately) and an optional
    /// already-expired deadline, a degraded result is still a
    /// refinement, k-anonymous, publishes every tuple exactly once,
    /// and leaves every constraint either satisfied or fully voided.
    #[test]
    fn degraded_output_honours_the_contract(
        rel in arb_relation(),
        picks in proptest::collection::vec((0usize..4, 0usize..4), 1..4),
        k in 2usize..4,
        node_cap in 0u64..600,
        expire_deadline in 0u8..2,
    ) {
        let sigma = arb_sigma(&rel, &picks, k);
        let budget = diva_core::BudgetSpec {
            deadline: (expire_deadline == 1).then_some(std::time::Duration::ZERO),
            node_budget: Some(node_cap),
            repair_budget: None,
        };
        let diva = Diva::new(DivaConfig::with_k(k).budget(budget));
        match diva.run(&rel, &sigma) {
            Ok(out) => {
                prop_assert!(is_refinement(&rel, &out.relation, &out.source_rows));
                prop_assert!(is_k_anonymous(&out.relation, k));
                prop_assert_eq!(out.relation.n_rows(), rel.n_rows());
                let mut src = out.source_rows.clone();
                src.sort_unstable();
                src.dedup();
                prop_assert_eq!(src.len(), rel.n_rows());
                let set = ConstraintSet::bind(&sigma, &out.relation).unwrap();
                for c in set.constraints() {
                    let n = c.count_in(&out.relation);
                    prop_assert!(
                        n == 0 || (c.lower..=c.upper).contains(&n),
                        "{} neither satisfied nor voided: {} outside [{}, {}]",
                        c.label(), n, c.lower, c.upper
                    );
                }
                if out.outcome.is_exact() {
                    // An exact outcome must additionally satisfy Σ
                    // outright (no voiding).
                    prop_assert!(set.satisfied_by(&out.relation));
                } else {
                    prop_assert!(out.stats.budget.is_some(), "degraded without accounting");
                }
            }
            Err(DivaError::NoDiverseClustering { .. })
            | Err(DivaError::ResidualTooSmall { .. })
            | Err(DivaError::IntegrateFailed { .. }) => {
                // Pre-search infeasibility proofs still beat degradation.
            }
            Err(e) => prop_assert!(false, "unexpected error class under budget: {e}"),
        }
    }

    /// Decomposition is an exact partition of the constraint graph:
    /// every node lands in exactly one component, every targeted row
    /// in exactly one component footprint (untargeted rows in none),
    /// and no adjacency or CSR entry crosses a component boundary.
    #[test]
    fn decomposition_is_an_exact_partition(
        rel in arb_relation(),
        picks in proptest::collection::vec((0usize..4, 0usize..4), 1..5),
        k in 2usize..4,
    ) {
        let sigma = arb_sigma(&rel, &picks, k);
        let set = ConstraintSet::bind(&sigma, &rel).unwrap();
        let graph = ConstraintGraph::build(&set);
        let comps = components(&graph);
        // Node partition.
        let mut node_comp = vec![usize::MAX; graph.n_nodes()];
        for (ci, comp) in comps.iter().enumerate() {
            for &n in &comp.nodes {
                prop_assert_eq!(node_comp[n as usize], usize::MAX, "node {} twice", n);
                node_comp[n as usize] = ci;
            }
        }
        prop_assert!(node_comp.iter().all(|&c| c != usize::MAX), "node in no component");
        // Row partition over the targeted rows.
        let mut row_comp = vec![usize::MAX; graph.n_rows()];
        for (ci, comp) in comps.iter().enumerate() {
            for &r in &comp.rows {
                prop_assert_eq!(row_comp[r], usize::MAX, "row {} in two footprints", r);
                row_comp[r] = ci;
            }
        }
        for (r, &rc) in row_comp.iter().enumerate() {
            let nodes = graph.nodes_of(r);
            if nodes.is_empty() {
                prop_assert_eq!(rc, usize::MAX, "untargeted row {} claimed", r);
            }
            for &n in nodes {
                prop_assert_eq!(
                    rc, node_comp[n as usize],
                    "row {} and its node {} disagree", r, n
                );
            }
        }
        // No edge crosses a boundary.
        for i in 0..graph.n_nodes() {
            for &j in graph.neighbors(i) {
                prop_assert_eq!(node_comp[i], node_comp[j], "edge {}-{} crosses", i, j);
            }
        }
    }

    /// Entropy ℓ-diversity is never stronger than it claims: the
    /// perplexity of a class is at most its number of distinct
    /// sensitive values, so the audited entropy-ℓ is bounded by the
    /// audited distinct-ℓ — per class and for the headline value.
    #[test]
    fn entropy_l_never_exceeds_distinct_l(rel in arb_relation()) {
        let a = Audit::new(&rel);
        let entropy = a.entropy_l();
        let distinct = a.distinct_l();
        prop_assert!(entropy.achieved <= distinct.achieved + 1e-9);
        prop_assert_eq!(entropy.classes.len(), distinct.classes.len());
        for (e, d) in entropy.classes.iter().zip(&distinct.classes) {
            prop_assert_eq!(e.class, d.class);
            prop_assert!(
                e.value <= d.value + 1e-9,
                "class {}: perplexity {} exceeds distinct count {}", e.class, e.value, d.value
            );
        }
    }

    /// (α, k)-anonymity implies k-anonymity: whenever the audit suite
    /// passes a joint (α, k) spec, the relation crate's *independent*
    /// k-anonymity checker must agree.
    #[test]
    fn alpha_k_satisfaction_implies_k_anonymity(
        rel in arb_relation(),
        k in 1usize..6,
        alpha_pct in 10u32..100,
    ) {
        let spec = AuditSpec {
            k: Some(k),
            alpha: Some(f64::from(alpha_pct) / 100.0),
            ..AuditSpec::default()
        };
        let suite = audit(&rel, &spec);
        if suite.satisfied() {
            prop_assert!(is_k_anonymous(&rel, k), "(α,k) audit passed but table is not {k}-anonymous");
        }
        // And the k report alone must match the independent checker
        // exactly, satisfied or not.
        let k_ok = suite.report(ModelKind::KAnonymity).unwrap().satisfied;
        prop_assert_eq!(k_ok, Some(is_k_anonymous(&rel, k)));
    }

    /// t-closeness is monotone under class merging: coarsening a QI
    /// column (mapping classes onto fewer, larger ones) mixes class
    /// distributions toward the global one, so the audited t can only
    /// shrink or stay.
    #[test]
    fn t_closeness_monotone_under_class_merging(rel in arb_relation()) {
        let fine = Audit::new(&rel).t_closeness().achieved;
        // Coarsen: overwrite the first QI column with a constant, so
        // every fine class maps onto a coarse class that is a union of
        // fine classes.
        let mut b = RelationBuilder::new(rel.schema().clone());
        for row in 0..rel.n_rows() {
            let vals: Vec<String> = (0..rel.schema().arity())
                .map(|c| {
                    if c == 0 { "merged".to_string() } else { rel.value(row, c).to_string() }
                })
                .collect();
            b.push_row(&vals);
        }
        let coarse_rel = b.finish();
        let coarse = Audit::new(&coarse_rel).t_closeness().achieved;
        prop_assert!(
            coarse <= fine + 1e-9,
            "merging classes raised t-closeness: {coarse} > {fine}"
        );
    }

    /// Likeness/disclosure cross-consistencies: enhanced β (which
    /// caps the distance at −ln p) can never exceed basic β,
    /// recursive (c,1) degenerates to exactly the α of
    /// (α,k)-anonymity, and a single-class table (all QI merged) has
    /// every class distribution equal to the global one, so β, δ, and
    /// t all audit at exactly zero while k audits at |R|.
    #[test]
    fn likeness_checkers_are_cross_consistent(rel in arb_relation()) {
        let a = Audit::new(&rel);
        prop_assert!(a.enhanced_beta().achieved <= a.basic_beta().achieved + 1e-9);
        let r1 = a.recursive_cl(1);
        let alpha = a.alpha_k();
        prop_assert_eq!(r1.achieved.to_bits(), alpha.achieved.to_bits());
        // Merge everything into one class: overwrite every QI cell.
        let qi = rel.schema().qi_cols();
        let mut b = RelationBuilder::new(rel.schema().clone());
        for row in 0..rel.n_rows() {
            let vals: Vec<String> = (0..rel.schema().arity())
                .map(|c| {
                    if qi.contains(&c) { "m".to_string() } else { rel.value(row, c).to_string() }
                })
                .collect();
            b.push_row(&vals);
        }
        let one = b.finish();
        let a1 = Audit::new(&one);
        prop_assert_eq!(a1.n_classes(), 1);
        prop_assert_eq!(a1.k_anonymity().achieved, rel.n_rows() as f64);
        prop_assert!(a1.basic_beta().achieved.abs() < 1e-9);
        prop_assert!(a1.enhanced_beta().achieved.abs() < 1e-9);
        prop_assert!(a1.delta_disclosure().achieved.abs() < 1e-9);
        prop_assert!(a1.t_closeness().achieved.abs() < 1e-9);
    }

    /// Enforcement → audit round-trip: a table published under the
    /// entropy or recursive enforcement variant must audit at the
    /// configured parameter through the independent checker suite.
    #[test]
    fn enforcement_round_trips_through_the_audit(
        rel in arb_relation(),
        k in 2usize..4,
        variant_idx in 0usize..2,
    ) {
        let variant =
            [LVariant::Entropy, LVariant::Recursive { c: 2.0 }][variant_idx];
        let config = DivaConfig::with_k(k).l_diversity(2).l_variant(variant);
        match Diva::new(config).run(&rel, &[]) {
            Ok(out) if out.outcome.is_exact() => {
                let a = Audit::new(&out.relation);
                prop_assert!(a.k_anonymity().achieved >= k as f64);
                match variant {
                    LVariant::Entropy => prop_assert!(
                        a.entropy_l().achieved >= 2.0 - 1e-9,
                        "entropy enforcement audits at {}", a.entropy_l().achieved
                    ),
                    LVariant::Recursive { c } => {
                        let r = a.recursive_cl(2);
                        prop_assert!(
                            r.achieved.is_finite() && r.achieved <= c + 1e-9,
                            "recursive enforcement audits at c = {}", r.achieved
                        );
                    }
                    LVariant::Distinct => unreachable!(),
                }
            }
            Ok(_) => {}
            Err(DivaError::PrivacyInfeasible { .. })
            | Err(DivaError::NoDiverseClustering { .. })
            | Err(DivaError::ResidualTooSmall { .. })
            | Err(DivaError::IntegrateFailed { .. })
            | Err(DivaError::SearchBudgetExhausted { .. }) => {
                // Random tables may be genuinely infeasible; only a
                // *published* table is gated.
            }
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    /// Decision provenance accounts for the published table exactly —
    /// on exact *and* degraded runs: the log passes record/reference
    /// integrity validation, the recorded (row, col) cells are
    /// precisely the starred cells of the published relation (mapped
    /// through `source_rows`), every causal constraint a record cites
    /// is an index into Σ, and the per-constraint attribution sums to
    /// the published star count.
    #[test]
    fn provenance_accounts_for_every_star(
        rel in arb_relation(),
        picks in proptest::collection::vec((0usize..4, 0usize..4), 1..4),
        k in 2usize..4,
        expire_deadline in 0u8..2,
    ) {
        let sigma = arb_sigma(&rel, &picks, k);
        let prov = diva_obs::Provenance::enabled();
        let budget = diva_core::BudgetSpec {
            deadline: (expire_deadline == 1).then_some(std::time::Duration::ZERO),
            ..diva_core::BudgetSpec::default()
        };
        let config = DivaConfig::with_k(k).provenance(prov.clone()).budget(budget);
        match Diva::new(config).run(&rel, &sigma) {
            Ok(out) => {
                let log = prov.snapshot().expect("enabled recorder yields a log");
                let summary = diva_obs::provenance::validate_log(&log);
                prop_assert!(summary.is_ok(), "integrity: {}", summary.unwrap_err());
                let summary = summary.unwrap();
                prop_assert_eq!(log.labels.len(), sigma.len());
                let attr =
                    out.stats.attribution.clone().expect("enabled run reports attribution");
                prop_assert_eq!(attr.total(), out.relation.star_count() as u64);
                prop_assert_eq!(summary.attribution, attr);
                for cell in &log.cells {
                    if let Some(ci) = cell.cause.constraint() {
                        prop_assert!(
                            (ci as usize) < sigma.len(),
                            "record cites constraint {} outside Σ (|Σ| = {})", ci, sigma.len()
                        );
                    }
                }
                let mut starred: Vec<(u64, u32)> = Vec::new();
                for row in 0..out.relation.n_rows() {
                    for col in 0..out.relation.schema().arity() {
                        if out.relation.code(row, col) == STAR_CODE {
                            starred.push((out.source_rows[row] as u64, col as u32));
                        }
                    }
                }
                starred.sort_unstable();
                let mut recorded: Vec<(u64, u32)> =
                    log.cells.iter().map(|c| (c.row, c.col)).collect();
                recorded.sort_unstable();
                prop_assert_eq!(recorded, starred, "recorded cells ≠ published stars");
            }
            Err(DivaError::NoDiverseClustering { .. })
            | Err(DivaError::ResidualTooSmall { .. })
            | Err(DivaError::IntegrateFailed { .. })
            | Err(DivaError::SearchBudgetExhausted { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    /// Suppression never *increases* a target count: every constraint
    /// count in DIVA's output is ≤ its count in the input.
    #[test]
    fn counts_never_increase(
        rel in arb_relation(),
        picks in proptest::collection::vec((0usize..4, 0usize..4), 1..3),
    ) {
        let sigma = arb_sigma(&rel, &picks, 2);
        if let Ok(out) = Diva::new(DivaConfig::with_k(2)).run(&rel, &sigma) {
            let in_set = ConstraintSet::bind(&sigma, &rel).unwrap();
            let out_set = ConstraintSet::bind(&sigma, &out.relation).unwrap();
            for (ci, co) in in_set.constraints().iter().zip(out_set.constraints()) {
                prop_assert!(co.count_in(&out.relation) <= ci.count_in(&rel));
            }
        }
    }
}
