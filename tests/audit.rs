//! Golden-fixture tests of the `diva-metrics` audit suite.
//!
//! Three small hand-scored CSVs live under `tests/fixtures/audit/`
//! (the paper's running example raw and 3-anonymized, plus a negative
//! table violating every model) with their expected `AuditReport`
//! JSON committed next to them. The tests pin both directions:
//! byte-identical JSON against the committed files (so the rendering
//! can't drift silently) *and* independently hand-computed headline
//! values (so the committed files can't drift with the
//! implementation). `scripts/check.sh` re-scores the same fixtures
//! through the `diva audit` CLI and diffs against the same files.

use std::path::PathBuf;

use diva_metrics::audit::{audit, Audit, AuditSpec, ModelKind};
use diva_relation::csv::read_relation_file;
use diva_relation::{AttrRole, Relation};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/audit")
}

fn load_fixture(name: &str) -> Relation {
    let dir = fixture_dir();
    let roles_text =
        std::fs::read_to_string(dir.join(format!("{name}.roles"))).expect("roles file");
    let roles: Vec<AttrRole> = roles_text
        .trim()
        .split(',')
        .map(|r| match r.trim() {
            "qi" => AttrRole::Quasi,
            "sensitive" => AttrRole::Sensitive,
            other => panic!("unknown role {other:?} in {name}.roles"),
        })
        .collect();
    read_relation_file(&dir.join(format!("{name}.csv")), &roles).expect("fixture parses")
}

fn expected_json(name: &str) -> String {
    std::fs::read_to_string(fixture_dir().join(format!("{name}.expect.json")))
        .expect("expected JSON committed")
}

/// The scoring spec the committed `.expect.json` files were produced
/// with: no requested parameters, recursive tail index 2.
fn scoring_spec() -> AuditSpec {
    AuditSpec::default()
}

#[test]
fn golden_fixtures_render_byte_identical_json() {
    for name in ["paper_table2", "paper_table1_raw", "negative"] {
        let rel = load_fixture(name);
        let got = audit(&rel, &scoring_spec()).to_json();
        assert_eq!(got, expected_json(name), "audit JSON drifted for fixture {name}");
    }
}

#[test]
fn paper_table2_hand_scored() {
    // Table 2 of the paper: {t1,t2,t3}, {t4..t7}, {t8,t9,t10}.
    let rel = load_fixture("paper_table2");
    let a = Audit::new(&rel);
    assert_eq!(a.n_classes(), 3);
    assert_eq!(a.k_anonymity().achieved, 3.0);
    assert_eq!(a.distinct_l().achieved, 3.0);
    // Middle class diagnoses [Hyp, Hyp, Migraine, Seizure] → counts
    // [2,1,1] → perplexity 2^1.5 — the pinned entropy-l value.
    let e = a.entropy_l();
    assert!((e.achieved - 2.0f64.powf(1.5)).abs() < 1e-9);
    assert_eq!(e.worst.as_ref().map(|w| w.class), Some(1));
    // Recursive l=2 on [2,1,1]: 2/(1+1) = 1.
    assert!((a.recursive_cl(2).achieved - 1.0).abs() < 1e-12);
    // α = 2/4 in the middle class.
    assert!((a.alpha_k().achieved - 0.5).abs() < 1e-12);
    // Basic β: Tuberculosis in class 0 — q = 1/3 vs p = 1/10 →
    // (q−p)/p = 7/3.
    assert!((a.basic_beta().achieved - 7.0 / 3.0).abs() < 1e-9);
    // Enhanced β caps it at −ln(1/10).
    assert!((a.enhanced_beta().achieved - 10.0f64.ln()).abs() < 1e-9);
    // δ = ln((1/3)/(1/10)) for the same value.
    assert!((a.delta_disclosure().achieved - (10.0f64 / 3.0).ln()).abs() < 1e-9);
    // t-closeness: class 0 vs global over the 6-value ordered domain,
    // hand-summed cumulative differences → 0.38/3... = 0.126667.
    assert!((a.t_closeness().achieved - 0.126_666_666_666_667).abs() < 1e-9);
}

#[test]
fn paper_table1_raw_hand_scored() {
    let rel = load_fixture("paper_table1_raw");
    let a = Audit::new(&rel);
    assert_eq!(a.n_classes(), 10, "every raw tuple is its own class");
    assert_eq!(a.k_anonymity().achieved, 1.0);
    assert_eq!(a.distinct_l().achieved, 1.0);
    assert_eq!(a.entropy_l().achieved, 1.0);
    assert!(!a.recursive_cl(2).achieved.is_finite(), "singleton classes have no l-tail");
    assert_eq!(a.alpha_k().achieved, 1.0);
    // β: a singleton holding a 1/10-frequency value: (1−0.1)/0.1 = 9.
    assert!((a.basic_beta().achieved - 9.0).abs() < 1e-12);
    // t: the Tuberculosis row (last in the ordered domain): cumulative
    // sums 0.3+0.4+0.6+0.7+0.9 over m−1 = 5 → 0.58.
    assert!((a.t_closeness().achieved - 0.58).abs() < 1e-12);
}

#[test]
fn negative_table_fails_every_model_with_the_exact_witness() {
    // Classes: A = {(a,x),(a,x)}, B = {(b,x),(b,y),(b,z)}; global
    // distribution x 3/5, y 1/5, z 1/5.
    let rel = load_fixture("negative");
    let spec = AuditSpec {
        k: Some(3),
        distinct_l: Some(2),
        entropy_l: Some(2.0),
        recursive_c: Some(1.0),
        recursive_l: 2,
        alpha: Some(0.5),
        basic_beta: Some(0.5),
        enhanced_beta: Some(0.5),
        delta: Some(0.5),
        t: Some(0.1),
    };
    let suite = audit(&rel, &spec);
    assert!(!suite.satisfied());
    // Which class witnesses each violation, and at what value.
    let expect: [(ModelKind, usize, f64); 8] = [
        (ModelKind::KAnonymity, 0, 2.0),
        (ModelKind::DistinctL, 0, 1.0),
        (ModelKind::EntropyL, 0, 1.0),
        (ModelKind::AlphaK, 0, 1.0),
        (ModelKind::BasicBeta, 0, 2.0 / 3.0),
        (ModelKind::EnhancedBeta, 1, 2.0 / 3.0),
        (ModelKind::DeltaDisclosure, 1, ((1.0f64 / 3.0) / 0.6).ln().abs()),
        (ModelKind::TCloseness, 0, 0.3),
    ];
    for (model, class, value) in expect {
        let r = suite.report(model).expect("report present");
        assert_eq!(r.satisfied, Some(false), "{model:?} must be violated");
        let w = r.worst.as_ref().expect("witness present");
        assert_eq!(w.class, class, "{model:?} witness class");
        assert!((w.value - value).abs() < 1e-9, "{model:?}: {} vs {value}", w.value);
    }
    // Recursive (c,l): class A has a single sensitive value, so no c
    // can satisfy it — the achieved c is non-finite and any requested
    // c is violated.
    let r = suite.report(ModelKind::RecursiveCL).expect("recursive report");
    assert_eq!(r.satisfied, Some(false));
    assert!(!r.achieved.is_finite());
    assert_eq!(r.worst.as_ref().map(|w| w.class), Some(0));
    assert_eq!(r.worst.as_ref().map(|w| w.qi.clone()), Some(vec!["a".to_string()]));
}

#[test]
fn fixtures_match_the_in_repo_paper_example() {
    // The committed raw CSV must be exactly the repo's paper_table1
    // fixture, so the golden files track the canonical example.
    let committed = load_fixture("paper_table1_raw");
    let canonical = diva_relation::fixtures::paper_table1();
    assert_eq!(committed.n_rows(), canonical.n_rows());
    for row in 0..canonical.n_rows() {
        for col in 0..canonical.schema().arity() {
            assert_eq!(
                committed.value(row, col).as_str(),
                canonical.value(row, col).as_str(),
                "cell ({row},{col}) differs from fixtures::paper_table1"
            );
        }
    }
    // And the anonymized CSV must be the Table-2 clustering of it.
    let s = diva_relation::suppress::suppress_clustering(
        &canonical,
        &[vec![0, 1, 2], vec![3, 4, 5, 6], vec![7, 8, 9]],
    );
    let committed2 = load_fixture("paper_table2");
    for row in 0..s.relation.n_rows() {
        for col in 0..s.relation.schema().arity() {
            assert_eq!(
                committed2.value(row, col).as_str(),
                s.relation.value(row, col).as_str(),
                "cell ({row},{col}) differs from the Table-2 suppression"
            );
        }
    }
}
