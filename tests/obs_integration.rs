//! Workspace-level observability tests: trace completeness of a full
//! pipeline run, byte-identical output with obs on vs off, and a
//! disabled-mode overhead smoke (gated by `SKIP_BENCH=1` like the
//! bench stage of `scripts/check.sh`).

use diva_constraints::Constraint;
use diva_core::{Diva, DivaConfig, Strategy};
use diva_obs::{json, Obs, Stopwatch};
use diva_relation::Relation;

fn workload() -> (Relation, Vec<Constraint>) {
    let rel = diva_datagen::medical(400, 7);
    let sigma = diva_constraints::generators::proportional(&rel, 5, 0.7, 20);
    (rel, sigma)
}

fn run_with(obs: Obs) -> diva_core::DivaResult {
    let (rel, sigma) = workload();
    let config = DivaConfig { k: 5, strategy: Strategy::MaxFanOut, obs, ..DivaConfig::default() };
    Diva::new(config).run(&rel, &sigma).expect("workload solves")
}

/// Every phase of the pipeline must appear in the exported trace, the
/// trace must be valid JSON-lines, and the summary must aggregate the
/// same spans — the same contract `trace-check` enforces in check.sh.
#[test]
fn full_run_trace_is_complete_and_parses() {
    let obs = Obs::enabled();
    run_with(obs.clone());
    let snapshot = obs.snapshot();

    let trace = snapshot.trace_jsonl();
    let mut names = Vec::new();
    for line in trace.lines() {
        let v = json::parse(line).expect("trace line parses");
        assert_eq!(v.get("type").and_then(|t| t.as_str()), Some("span"));
        if let Some(name) = v.get("name").and_then(|n| n.as_str()) {
            names.push(name.to_string());
        }
    }
    for required in
        ["diva.run", "diva.clustering", "diva.suppress", "diva.anonymize", "diva.integrate"]
    {
        assert!(names.iter().any(|n| n == required), "trace lacks {required}");
    }

    let summary = json::parse(&snapshot.summary_json()).expect("summary parses");
    let spans = summary.get("spans").expect("spans section");
    assert!(spans.get("diva.run").is_some(), "summary lacks diva.run");
    let counters = summary.get("counters").expect("counters section");
    assert!(
        counters.get("coloring.MaxFanOut.node_selections").is_some(),
        "summary lacks per-strategy colouring counters"
    );
    let histograms = summary.get("histograms").expect("histograms section");
    assert!(histograms.get("cluster.size").is_some(), "summary lacks cluster.size");
}

/// Enabling tracing must not perturb the published relation: the obs
/// handle only observes, all decisions flow from `DivaConfig::seed`.
#[test]
fn enabled_and_disabled_obs_agree_byte_for_byte() {
    let obs = Obs::enabled();
    let plain = run_with(Obs::disabled());
    let traced = run_with(obs.clone());
    assert_eq!(format!("{:?}", plain.relation), format!("{:?}", traced.relation));
    assert_eq!(plain.groups, traced.groups);
    assert_eq!(plain.source_rows, traced.source_rows);
    assert_eq!(plain.stats.coloring, traced.stats.coloring);
    // Without an installed counting allocator (this test binary has
    // none), memory attribution stays off: no per-phase totals in the
    // stats and no alloc fields in the exports, so the trace and
    // summary stay byte-identical to the pre-profiling schema.
    assert!(plain.stats.alloc.is_none(), "disabled obs must not attribute memory");
    assert!(traced.stats.alloc.is_none(), "no allocator installed, alloc must be None");
    let snapshot = obs.snapshot();
    assert!(
        !snapshot.trace_jsonl().contains("alloc_bytes"),
        "trace must omit alloc fields without a counting allocator"
    );
    assert!(
        !snapshot.summary_json().contains("alloc_bytes"),
        "summary must omit alloc totals without a counting allocator"
    );
}

/// Live telemetry must be observational only: a run with an enabled
/// progress board (sampler attached, exactly what `--stats-addr` and
/// `--watch` wire up) publishes the same relation, groups, and search
/// stats as the plain run, and the board's final counters agree with
/// the search's own statistics.
#[test]
fn enabled_board_keeps_output_byte_identical() {
    let (rel, sigma) = workload();
    let run_with_board = |board: diva_obs::live::ProgressBoard| {
        let config =
            DivaConfig { k: 5, strategy: Strategy::MaxFanOut, board, ..DivaConfig::default() };
        Diva::new(config).run(&rel, &sigma).expect("workload solves")
    };
    let plain = run_with_board(diva_obs::live::ProgressBoard::disabled());
    let board = diva_obs::live::ProgressBoard::enabled();
    let sampler = diva_obs::live::Sampler::spawn(
        &board,
        &Obs::disabled(),
        diva_obs::live::SamplerConfig {
            interval: std::time::Duration::from_millis(1),
            ..diva_obs::live::SamplerConfig::default()
        },
        None,
    );
    let live = run_with_board(board.clone());
    sampler.stop();
    assert_eq!(format!("{:?}", plain.relation), format!("{:?}", live.relation));
    assert_eq!(plain.groups, live.groups);
    assert_eq!(plain.source_rows, live.source_rows);
    assert_eq!(plain.stats.coloring, live.stats.coloring);
    let snap = board.read().expect("enabled board snapshots");
    assert_eq!(snap.phase, diva_obs::live::Phase::Done);
    assert_eq!(snap.nodes, live.stats.coloring.assignments_tried, "board nodes == search nodes");
    assert_eq!(snap.satisfied, sigma.len() as u64, "exact run satisfies all of sigma");
    assert_eq!(snap.voided, 0);
    assert!(!snap.stalled, "a healthy run must not be flagged");
}

/// Disabled-mode overhead smoke: a run with the default (disabled)
/// handle must not be grossly slower than the enabled run is — the
/// precise < 2% budget is measured in release mode by the perf bench
/// (`obs_overhead` in `BENCH_diva.json`); this debug-mode smoke only
/// guards against a pathological regression (e.g. the disabled path
/// taking a lock per event). Set `SKIP_BENCH=1` to skip.
#[test]
fn disabled_mode_overhead_smoke() {
    if std::env::var("SKIP_BENCH").as_deref() == Ok("1") {
        return;
    }
    let best = |obs_for_rep: fn() -> Obs| {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Stopwatch::start();
            run_with(obs_for_rep());
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let disabled = best(Obs::disabled);
    let enabled = best(Obs::enabled);
    // Debug builds are noisy; 1.5x is far above any plausible real
    // overhead yet still catches accidental hot-path work.
    assert!(
        disabled <= enabled * 1.5,
        "disabled obs ({disabled:.4}s) much slower than enabled ({enabled:.4}s)"
    );
}
