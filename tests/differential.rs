//! Differential testing harness: the same instance solved many ways —
//! every strategy, the racing portfolio, budget-unbounded and
//! hugely-budgeted runs, and thread counts 1..4 — must agree on
//! satisfiability, land in the same suppression band, and (where the
//! configuration is identical) be byte-identical. Every published
//! table is additionally re-scored through the independent
//! `diva-metrics` audit suite, so the solver's guarantees are checked
//! by code that shares none of its machinery.

use std::time::Duration;

use diva_constraints::{generators, Constraint, ConstraintSet};
use diva_core::{
    run_portfolio, BudgetSpec, Diva, DivaConfig, DivaError, DivaResult, LVariant, Strategy,
};
use diva_metrics::audit::{audit, Audit, AuditSpec, ModelKind};
use diva_relation::{is_k_anonymous, Relation};

/// A stable fingerprint of the published relation plus everything a
/// caller can observe about the grouping.
fn fingerprint(out: &DivaResult) -> String {
    format!("{:?}|{:?}|{:?}", out.relation, out.groups, out.source_rows)
}

/// Calibrated satisfiable instances (seeds chosen so every strategy
/// solves them under the vendored RNG's streams).
fn instances() -> Vec<(&'static str, Relation, Vec<Constraint>, usize)> {
    let medical = diva_datagen::medical(1_200, 11);
    let medical_sigma = generators::with_conflict_rate(&medical, 6, 0.4, 5, 3);
    let popsyn = diva_datagen::popsyn(2_000, diva_datagen::Dist::zipf_default(), 13);
    let popsyn_sigma = generators::with_conflict_rate(&popsyn, 5, 0.3, 10, 8);
    vec![("medical", medical, medical_sigma, 5), ("popsyn", popsyn, popsyn_sigma, 10)]
}

/// Instances for the decomposition differential: the calibrated pair
/// (whose proportional σ chains into a single component, pinning the
/// decomposed path's parity with the monolithic fast path) plus a
/// genuinely many-component instance from the `islands` generator
/// (8 disjoint constraint families → 8 components of 2 nodes each;
/// windows loose enough that even naive Basic solves every family).
fn decomposition_instances() -> Vec<(&'static str, Relation, Vec<Constraint>, usize)> {
    let mut out = instances();
    let many = diva_datagen::medical(1_500, 17);
    let many_sigma = generators::islands(&many, 8, 2, 0.9, 20);
    out.push(("medical-many", many, many_sigma, 5));
    out
}

/// The decomposition layer's tentpole guarantee: for every strategy
/// and thread count, component-parallel solving publishes the
/// byte-identical relation the forced-monolithic solve publishes.
/// The inner component portfolio stays off — racing is wall-clock
/// nondeterministic by design, so only the pure pool is pinned here.
#[test]
fn decomposed_solve_is_byte_identical_to_monolithic() {
    for (name, rel, sigma, k) in decomposition_instances() {
        for strategy in Strategy::all() {
            let base =
                DivaConfig { k, strategy, backtrack_limit: Some(50_000), ..DivaConfig::default() };
            let mono = Diva::new(DivaConfig { decompose: false, threads: Some(1), ..base.clone() })
                .run(&rel, &sigma)
                .unwrap_or_else(|e| panic!("{name}/{strategy}: monolithic failed: {e}"));
            assert!(mono.outcome.is_exact(), "{name}/{strategy}: monolithic degraded");
            let reference = fingerprint(&mono);
            for threads in [1usize, 2, 8] {
                let out = Diva::new(DivaConfig { threads: Some(threads), ..base.clone() })
                    .run(&rel, &sigma)
                    .unwrap_or_else(|e| panic!("{name}/{strategy}/t{threads}: {e}"));
                assert!(out.outcome.is_exact(), "{name}/{strategy}/t{threads}: degraded");
                assert_eq!(
                    fingerprint(&out),
                    reference,
                    "{name}/{strategy}: decomposed (threads={threads}) diverged from monolithic"
                );
            }
        }
    }
}

/// Decision provenance is part of the decomposition contract: the
/// component-parallel solve must record the byte-identical provenance
/// log (after its local→global id translation at merge) that the
/// forced-monolithic solve records — same groups, same cells, same
/// causes, same attribution — at every thread count.
#[test]
fn decomposed_provenance_is_byte_identical_to_monolithic() {
    for (name, rel, sigma, k) in decomposition_instances() {
        let run = |decompose: bool, threads: usize| {
            let prov = diva_obs::Provenance::enabled();
            let config = DivaConfig {
                k,
                backtrack_limit: Some(50_000),
                decompose,
                threads: Some(threads),
                provenance: prov.clone(),
                ..DivaConfig::default()
            };
            let out = Diva::new(config)
                .run(&rel, &sigma)
                .unwrap_or_else(|e| panic!("{name} (decompose={decompose}): {e}"));
            assert!(out.outcome.is_exact(), "{name} (decompose={decompose}): degraded");
            (prov.render().expect("enabled recorder renders"), fingerprint(&out))
        };
        let (mono_log, mono_fp) = run(false, 1);
        for threads in [1usize, 4] {
            let (log, fp) = run(true, threads);
            assert_eq!(fp, mono_fp, "{name}/t{threads}: relation diverged from monolithic");
            assert_eq!(log, mono_log, "{name}/t{threads}: provenance diverged from monolithic");
        }
    }
}

/// Every solver configuration agrees the calibrated instances are
/// satisfiable, produces a valid (k, Σ)-anonymization, and lands
/// within the expected suppression band: the guided strategies within
/// 10% of each other, naive Basic within 55% (the paper's Fig. 5 gap
/// — Basic suppresses far more), and the portfolio/budgeted runs
/// matching some member.
#[test]
fn all_solvers_agree_on_satisfiable_instances() {
    for (name, rel, sigma, k) in instances() {
        let mut stars: Vec<(String, usize)> = Vec::new();
        let mut check = |label: String, out: &DivaResult| {
            assert!(is_k_anonymous(&out.relation, k), "{name}/{label}: not {k}-anonymous");
            assert_eq!(out.relation.n_rows(), rel.n_rows(), "{name}/{label}: rows changed");
            let set = ConstraintSet::bind(&sigma, &out.relation).expect("bind");
            assert!(set.satisfied_by(&out.relation), "{name}/{label}: Σ violated");
            assert!(out.outcome.is_exact(), "{name}/{label}: unexpectedly degraded");
            // Independent re-scoring: the audit suite, which shares no
            // code with the solver, must confirm the configured k and
            // the (default l = 1) diversity floor on every exact run.
            let spec = AuditSpec { k: Some(k), distinct_l: Some(1), ..AuditSpec::default() };
            let suite = audit(&out.relation, &spec);
            assert!(suite.satisfied(), "{name}/{label}: audit refutes the published table");
            let achieved_k = suite.report(ModelKind::KAnonymity).expect("k report").achieved;
            assert!(achieved_k >= k as f64, "{name}/{label}: audited k {achieved_k} < {k}");
            stars.push((label, out.relation.star_count()));
        };
        for strategy in Strategy::all() {
            let config =
                DivaConfig { k, strategy, backtrack_limit: Some(50_000), ..DivaConfig::default() };
            let out = Diva::new(config).run(&rel, &sigma).expect("strategy solves");
            check(format!("{strategy}"), &out);
        }
        let out = run_portfolio(&rel, &sigma, &DivaConfig::with_k(k), 2).expect("portfolio");
        check("portfolio".to_string(), &out);
        // A huge-but-finite budget must not change the verdict.
        let config = DivaConfig {
            k,
            budget: BudgetSpec {
                deadline: Some(Duration::from_secs(3_600)),
                node_budget: Some(u64::MAX / 2),
                repair_budget: Some(u64::MAX / 2),
            },
            ..DivaConfig::default()
        };
        let out = Diva::new(config).run(&rel, &sigma).expect("budgeted run solves");
        check("budgeted".to_string(), &out);

        let min_stars = stars.iter().map(|(_, s)| *s).min().unwrap() as f64;
        for (label, s) in &stars {
            let tolerance = if label == "Basic" { 0.55 } else { 0.10 };
            let ratio = *s as f64 / min_stars;
            assert!(
                ratio <= 1.0 + tolerance,
                "{name}/{label}: {s} stars vs best {min_stars} exceeds the {tolerance} band \
                 ({stars:?})"
            );
        }
    }
}

/// Every ℓ-diversity enforcement variant round-trips through the
/// independent audit: a table published under distinct/entropy/
/// recursive enforcement must *audit* at the configured parameter,
/// not merely pass the solver's own internal check.
#[test]
fn diversity_variants_audit_their_achieved_parameters() {
    let rel = diva_datagen::medical(600, 13);
    let sigma = vec![Constraint::single("ETH", "Caucasian", 20, 600)];
    for variant in [LVariant::Distinct, LVariant::Entropy, LVariant::Recursive { c: 2.0 }] {
        let config = DivaConfig::with_k(5).l_diversity(3).l_variant(variant);
        let out = Diva::new(config).run(&rel, &sigma).expect("satisfiable with 8 diagnoses");
        assert!(out.outcome.is_exact(), "{variant:?}: degraded");
        let a = Audit::new(&out.relation);
        assert!(a.k_anonymity().achieved >= 5.0, "{variant:?}: audited k below 5");
        match variant {
            LVariant::Distinct => {
                assert!(a.distinct_l().achieved >= 3.0, "distinct-ℓ audits below 3");
            }
            LVariant::Entropy => {
                let e = a.entropy_l().achieved;
                assert!(e >= 3.0 - 1e-9, "entropy-ℓ audits at {e} < 3");
                // Entropy-ℓ implies distinct-ℓ at the same level.
                assert!(a.distinct_l().achieved >= 3.0);
            }
            LVariant::Recursive { c } => {
                let r = a.recursive_cl(3);
                assert!(
                    r.achieved.is_finite() && r.achieved <= c + 1e-9,
                    "recursive (c,3): audited c {} exceeds configured {c}",
                    r.achieved
                );
            }
        }
    }
}

/// Degraded runs keep the satisfied-or-voided contract: k-anonymity
/// survives degradation and the independent audit must confirm it,
/// while the ℓ-diversity extension is explicitly dropped (so it is
/// *not* gated here — only k is).
#[test]
fn degraded_runs_still_audit_k_anonymous() {
    let rel = diva_datagen::medical(1_200, 11);
    let sigma = generators::with_conflict_rate(&rel, 6, 0.4, 5, 3);
    let config = DivaConfig {
        k: 5,
        budget: BudgetSpec { deadline: Some(Duration::ZERO), ..BudgetSpec::default() },
        ..DivaConfig::default()
    };
    let out = Diva::new(config).run(&rel, &sigma).expect("zero deadline degrades, not errors");
    assert!(!out.outcome.is_exact(), "zero deadline must degrade");
    let suite = audit(&out.relation, &AuditSpec { k: Some(5), ..AuditSpec::default() });
    assert!(suite.satisfied(), "degraded output fails the audited k gate");
    let achieved = suite.report(ModelKind::KAnonymity).expect("k report").achieved;
    assert!(achieved >= 5.0, "degraded run audits at k = {achieved}");
}

/// A budget too large to ever trip must be byte-identical to running
/// with no budget at all — arming the accounting cannot perturb the
/// search.
#[test]
fn huge_budget_is_byte_identical_to_unbounded() {
    let rel = diva_datagen::medical(1_200, 11);
    let sigma = generators::with_conflict_rate(&rel, 6, 0.4, 5, 3);
    let unbounded = Diva::new(DivaConfig::with_k(5)).run(&rel, &sigma).expect("solves");
    let config = DivaConfig {
        k: 5,
        budget: BudgetSpec {
            deadline: Some(Duration::from_secs(3_600)),
            node_budget: Some(u64::MAX / 2),
            repair_budget: Some(u64::MAX / 2),
        },
        ..DivaConfig::default()
    };
    let budgeted = Diva::new(config).run(&rel, &sigma).expect("solves");
    assert_eq!(fingerprint(&unbounded), fingerprint(&budgeted));
    assert!(budgeted.outcome.is_exact());
    // The budgeted run additionally reports its accounting. (Node
    // charges land in 256-assignment quanta, so a small search can
    // legitimately report zero explored nodes — only presence is
    // asserted here.)
    assert!(budgeted.stats.budget.is_some(), "armed budget reports no usage");
    assert!(unbounded.stats.budget.is_none(), "unbudgeted run invented accounting");
}

/// `Outcome::Exact` results are byte-identical whatever the `threads`
/// setting: parallel candidate enumeration and the portfolio cap must
/// not leak nondeterminism into the published relation.
#[test]
fn exact_outcome_is_byte_identical_across_thread_counts() {
    let rel = diva_datagen::medical(1_200, 11);
    let sigma = generators::with_conflict_rate(&rel, 6, 0.4, 5, 3);
    let mut prints = Vec::new();
    for threads in 1..=4usize {
        let config = DivaConfig { k: 5, threads: Some(threads), ..DivaConfig::default() };
        let out = Diva::new(config).run(&rel, &sigma).expect("solves");
        assert!(out.outcome.is_exact());
        prints.push(fingerprint(&out));
    }
    for p in &prints[1..] {
        assert_eq!(&prints[0], p, "thread count changed an exact result");
    }
}

/// On a provably unsatisfiable instance every configuration returns
/// the same `NoDiverseClustering` verdict — including budgeted runs
/// (an unsat proof beats degradation) and the portfolio (the proof
/// beats every other member's failure).
#[test]
fn all_solvers_agree_on_an_unsatisfiable_instance() {
    let rel = diva_datagen::medical(500, 43);
    let eth = rel.schema().col_of("ETH");
    let (code, name) = rel.dict(eth).iter().next().map(|(c, n)| (c, n.to_string())).unwrap();
    let f = rel.column(eth).iter().filter(|&&c| c == code).count();
    let sigma = vec![diva_constraints::Constraint::single("ETH", name, f + 1, f + 100)];

    for strategy in Strategy::all() {
        let config = DivaConfig { k: 5, strategy, ..DivaConfig::default() };
        let err = Diva::new(config).run(&rel, &sigma).unwrap_err();
        assert!(matches!(err, DivaError::NoDiverseClustering { .. }), "{strategy}: {err}");
    }
    let config = DivaConfig {
        k: 5,
        budget: BudgetSpec::with_deadline(Duration::from_secs(3_600)),
        ..DivaConfig::default()
    };
    let err = Diva::new(config).run(&rel, &sigma).unwrap_err();
    assert!(matches!(err, DivaError::NoDiverseClustering { .. }), "budgeted: {err}");

    let err = run_portfolio(&rel, &sigma, &DivaConfig::with_k(5), 2).unwrap_err();
    assert!(matches!(err, DivaError::NoDiverseClustering { .. }), "portfolio: {err}");
}
