//! Healthcare scenario: publishing hospital records to a
//! pharmaceutical partner while preserving minority representation.
//!
//! This is the paper's motivating scenario (Example 1.1) at a
//! realistic size: 5,000 synthetic patient records with skewed
//! ethnicity and geography. A drug-development partner needs the
//! anonymized extract to keep *proportional representation* of every
//! ethnicity — otherwise the analysis silently under-counts minority
//! groups that plain k-anonymity tends to suppress first.
//!
//! ```text
//! cargo run --release --example healthcare
//! ```

use diva_anonymize::{Anonymizer, KMember};
use diva_constraints::{conflict_rate, Constraint, ConstraintSet};
use diva_core::{Diva, DivaConfig, Strategy};
use diva_relation::Relation;

/// Count retained (non-suppressed) occurrences of each ethnicity.
fn ethnicity_census(rel: &Relation) -> Vec<(String, usize)> {
    let eth = rel.schema().col_of("ETH");
    let dict = rel.dict(eth);
    dict.iter()
        .map(|(code, name)| {
            let count = rel.column(eth).iter().filter(|&&c| c == code).count();
            (name.to_string(), count)
        })
        .collect()
}

fn main() {
    let k = 10;
    let r = diva_datagen::medical(5_000, 42);
    println!("input: {} patient records, k = {k}", r.n_rows());
    println!("\nethnicity distribution in R:");
    for (name, count) in ethnicity_census(&r) {
        println!("  {name:<12} {count}");
    }

    // Proportional constraints: every ethnicity must keep at least 60%
    // of its original frequency in the published instance.
    let eth = r.schema().col_of("ETH");
    let sigma: Vec<Constraint> = r
        .dict(eth)
        .iter()
        .filter_map(|(code, name)| {
            let f = r.column(eth).iter().filter(|&&c| c == code).count();
            // Skip groups too small to host even one k-cluster.
            (f >= k).then(|| Constraint::single("ETH", name, (f * 6) / 10, f))
        })
        .collect();
    println!("\ndiversity constraints (≥60% of each ethnicity retained):");
    for c in &sigma {
        println!("  {c}");
    }
    let set = ConstraintSet::bind(&sigma, &r).expect("constraints bind");
    println!("conflict rate of Σ: {:.3}", conflict_rate(&set));

    // Plain k-member: how much ethnicity signal survives?
    let plain = KMember::default().anonymize(&r, k);
    let set_plain = ConstraintSet::bind(&sigma, &plain.relation).expect("bind");
    println!("\n-- plain k-member --");
    println!("satisfies Σ: {}", set_plain.satisfied_by(&plain.relation));
    for (name, count) in ethnicity_census(&plain.relation) {
        println!("  {name:<12} retained {count}");
    }
    println!("accuracy (star): {:.3}", diva_metrics::star_accuracy(&plain.relation));

    // DIVA: same k, but the constraints are guaranteed.
    let diva = Diva::new(DivaConfig::with_k(k).strategy(Strategy::MaxFanOut));
    match diva.run(&r, &sigma) {
        Ok(out) => {
            let set_diva = ConstraintSet::bind(&sigma, &out.relation).expect("bind");
            println!("\n-- DIVA (MaxFanOut) --");
            println!("satisfies Σ: {}", set_diva.satisfied_by(&out.relation));
            for (name, count) in ethnicity_census(&out.relation) {
                println!("  {name:<12} retained {count}");
            }
            println!("accuracy (star): {:.3}", diva_metrics::star_accuracy(&out.relation));
            println!(
                "cost of diversity: {} extra ★s over plain k-member",
                out.relation.star_count() as i64 - plain.relation.star_count() as i64
            );
        }
        Err(e) => println!("\nDIVA could not satisfy Σ: {e}"),
    }
}
