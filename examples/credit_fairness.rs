//! Credit-risk data release with fairness-motivated diversity.
//!
//! A lender shares anonymized credit records with an external model
//! auditor. To let the auditor measure disparate impact, every
//! (gender/status × risk-relevant) group must stay visible in the
//! anonymized extract — exactly the multi-attribute diversity
//! constraints of Definition 2.3's extension. The example also shows
//! DIVA's `Anonymize` step being swapped between all three baseline
//! algorithms (Figure 1: "amenable to any anonymization alg."), and
//! the parallel portfolio runner from the paper's future-work section.
//!
//! ```text
//! cargo run --release --example credit_fairness
//! ```

use diva_anonymize::{Anonymizer, KMember, Mondrian, Oka};
use diva_constraints::{Constraint, ConstraintSet};
use diva_core::{run_portfolio, Diva, DivaConfig, Strategy};

fn main() {
    let k = 10;
    let rel = diva_datagen::credit(99);
    println!(
        "credit dataset: {} rows × {} attributes ({} QI), k = {k}",
        rel.n_rows(),
        rel.schema().arity(),
        rel.schema().qi_cols().len()
    );

    // Multi-attribute fairness constraints: each personal-status group
    // must remain identifiable, and each (status, housing) cell that
    // is populated must keep at least one k-cluster visible.
    let status_col = rel.schema().col_of("personal_status_sex");
    let housing_col = rel.schema().col_of("housing");
    let mut sigma: Vec<Constraint> = Vec::new();
    let statuses: Vec<String> = rel.dict(status_col).iter().map(|(_, v)| v.to_string()).collect();
    let housings: Vec<String> = rel.dict(housing_col).iter().map(|(_, v)| v.to_string()).collect();
    for status in &statuses {
        let f = rel.count_matching(
            &[status_col],
            &[rel.dict(status_col).code(status).expect("status exists")],
        );
        if f >= 2 * k {
            sigma.push(Constraint::single("personal_status_sex", status, 2 * k, f));
        }
        for housing in &housings {
            let codes = [
                rel.dict(status_col).code(status).expect("status exists"),
                rel.dict(housing_col).code(housing).expect("housing exists"),
            ];
            let f = rel.count_matching(&[status_col, housing_col], &codes);
            if f >= 2 * k {
                sigma.push(Constraint::multi(
                    vec![
                        ("personal_status_sex".to_string(), status.clone()),
                        ("housing".to_string(), housing.clone()),
                    ],
                    k,
                    f,
                ));
            }
        }
    }
    println!("\nfairness constraints ({}):", sigma.len());
    for c in &sigma {
        println!("  {c}");
    }

    // DIVA with each Anonymize backend.
    let backends: Vec<(&str, Box<dyn Anonymizer + Send + Sync>)> = vec![
        ("k-member", Box::new(KMember::default())),
        ("OKA", Box::new(Oka::default())),
        ("Mondrian", Box::new(Mondrian)),
    ];
    println!("\nDIVA with each Anonymize backend:");
    for (name, backend) in backends {
        let config = DivaConfig::with_k(k).strategy(Strategy::MaxFanOut);
        let diva = Diva::with_anonymizer(config, backend);
        match diva.run(&rel, &sigma) {
            Ok(out) => {
                let sat = ConstraintSet::bind(&sigma, &out.relation)
                    .map(|s| s.satisfied_by(&out.relation))
                    .unwrap_or(false);
                println!(
                    "  {:<9} accuracy {:.3}  ★ {:>5}  groups {:>3}  Σ-sat {}  ({:?})",
                    name,
                    diva_metrics::star_accuracy(&out.relation),
                    out.relation.star_count(),
                    out.groups.len(),
                    sat,
                    out.stats.t_total
                );
            }
            Err(e) => println!("  {name:<9} failed: {e}"),
        }
    }

    // Parallel portfolio (future-work extension): all strategies race.
    println!("\nparallel portfolio (3 strategies × 2 seeds):");
    let t = std::time::Instant::now();
    match run_portfolio(&rel, &sigma, &DivaConfig::with_k(k), 2) {
        Ok(out) => println!(
            "  first finisher: accuracy {:.3}, ★ {}, in {:?}",
            diva_metrics::star_accuracy(&out.relation),
            out.relation.star_count(),
            t.elapsed()
        ),
        Err(e) => println!("  portfolio failed: {e}"),
    }
}
