//! Generalization-recoded publishing and query utility.
//!
//! The paper treats suppression as "a maximal form of generalization"
//! (§1). This example runs DIVA as usual and then *refines* its output
//! with per-attribute generalization hierarchies: `★`s that only hid
//! value spread inside a group become informative labels like
//! `"40-59"` or `"Prairies"`, while `★`s forced by upper-bound repairs
//! stay hidden. The diversity constraints remain satisfied (a target
//! value counts only at leaf level under both recodings), k-anonymity
//! is untouched, and both information loss (NCP) and the error of a
//! counting-query workload improve.
//!
//! ```text
//! cargo run --release --example generalization
//! ```

use std::collections::HashMap;

use diva_constraints::ConstraintSet;
use diva_core::{Diva, DivaConfig, Strategy};
use diva_metrics::{evaluate_utility, QueryWorkload};
use diva_relation::generalize::generalize_output;
use diva_relation::{is_k_anonymous, Hierarchy};

fn main() {
    let k = 10;
    let rel = diva_datagen::medical(4_000, 17);
    println!("input: {} patient records, k = {k}", rel.n_rows());

    // Hierarchies: ages into 20-year bands then 50-year bands;
    // provinces into regions; ethnicities into a broad grouping.
    let mut hierarchies = HashMap::new();
    hierarchies.insert("AGE".to_string(), Hierarchy::interval(0, 89, &[10, 30]));
    hierarchies.insert(
        "PRV".to_string(),
        Hierarchy::from_chains(&[
            vec!["BC", "West"],
            vec!["AB", "West"],
            vec!["SK", "West"],
            vec!["MB", "West"],
            vec!["ON", "Central"],
            vec!["QC", "Central"],
            vec!["NS", "Atlantic"],
            vec!["NB", "Atlantic"],
        ]),
    );
    hierarchies.insert("GEN".to_string(), Hierarchy::flat(["Female", "Male"]));

    // Diversity: keep at least half of each of the two largest
    // ethnicities visible.
    let sigma = diva_constraints::generators::proportional(&rel, 2, 0.5, 10 * k);
    println!("\nconstraints:");
    for c in &sigma {
        println!("  {c}");
    }

    let out = Diva::new(DivaConfig::with_k(k).strategy(Strategy::MaxFanOut))
        .run(&rel, &sigma)
        .expect("satisfiable");
    let set = ConstraintSet::bind(&sigma, &out.relation).expect("bind");
    println!("\nsuppression-recoded output:");
    println!("  ★s: {}", out.relation.star_count());
    println!("  star accuracy: {:.4}", diva_metrics::star_accuracy(&out.relation));
    println!("  Σ satisfied: {}", set.satisfied_by(&out.relation));

    let gen = generalize_output(&rel, &out.relation, &out.groups, &out.source_rows, &hierarchies);
    println!("\ngeneralization-recoded output:");
    println!("  residual ★s: {}", gen.relation.star_count());
    println!(
        "  mean NCP per QI cell: {:.4} (★-recoding would be {:.4})",
        gen.ncp_mean,
        diva_metrics::star_ratio(&out.relation)
    );
    println!("  2 sample rows: ");
    for row in 0..2 {
        let cells: Vec<String> = (0..gen.relation.schema().arity())
            .map(|c| gen.relation.value(row, c).to_string())
            .collect();
        println!("    {}", cells.join(" | "));
    }
    let gen_set = ConstraintSet::bind(&sigma, &gen.relation).expect("bind");
    println!("  k-anonymous: {}", is_k_anonymous(&gen.relation, k));
    println!("  Σ satisfied: {}", gen_set.satisfied_by(&gen.relation));

    // Query utility: counting queries on demographic values.
    let workload = QueryWorkload::random(&rel, 200, 7);
    let u_star = evaluate_utility(&rel, &out.relation, &workload);
    let u_gen = evaluate_utility(&rel, &gen.relation, &workload);
    println!("\ncounting-query workload (200 queries):");
    println!(
        "  suppression recoding:   mean rel. error {:.3}, exact {:.0}%",
        u_star.mean_relative_error,
        u_star.exact_fraction * 100.0
    );
    println!(
        "  generalization recoding: mean rel. error {:.3}, exact {:.0}%",
        u_gen.mean_relative_error,
        u_gen.exact_fraction * 100.0
    );
    println!(
        "\n(leaf-level counts are identical under both recodings; the gain\n\
         appears for analysts who can use the coarser labels directly)"
    );
}
