//! Census workforce release: the three constraint classes and the
//! three DIVA strategies on a Census-like extract.
//!
//! A statistics agency publishes a k-anonymized workforce extract and
//! must decide *which class* of diversity constraint to enforce. The
//! paper (§4) implements three classes — minimum frequency, average,
//! and proportional representation — and settles on proportional for
//! its experiments. This example builds all three over the same data,
//! reports their conflict rates, and runs each DIVA strategy,
//! reproducing the paper's observation that the selection strategies
//! dominate Basic as constraint interactions grow.
//!
//! ```text
//! cargo run --release --example census_workforce
//! ```

use diva_constraints::{conflict_rate, generators, Constraint, ConstraintSet};
use diva_core::{Diva, DivaConfig, Strategy};
use diva_relation::Relation;

fn evaluate(rel: &Relation, name: &str, sigma: &[Constraint], k: usize) {
    let set = ConstraintSet::bind(sigma, rel).expect("constraints bind");
    println!(
        "\n== {name} ({} constraints, conflict rate {:.3}) ==",
        sigma.len(),
        conflict_rate(&set)
    );
    for strategy in Strategy::all() {
        let diva = Diva::new(DivaConfig::with_k(k).strategy(strategy));
        let t = std::time::Instant::now();
        match diva.run(rel, sigma) {
            Ok(out) => {
                let ok = ConstraintSet::bind(sigma, &out.relation)
                    .map(|s| s.satisfied_by(&out.relation))
                    .unwrap_or(false);
                println!(
                    "  {:<10} {:>8.2?}  accuracy {:.3}  ★ {:>6}  backtracks {:>5}  Σ-sat {}",
                    strategy.name(),
                    t.elapsed(),
                    diva_metrics::star_accuracy(&out.relation),
                    out.relation.star_count(),
                    out.stats.coloring.backtracks,
                    ok
                );
            }
            Err(e) => println!("  {:<10} failed: {e}", strategy.name()),
        }
    }
}

fn main() {
    let k = 10;
    let rel = diva_datagen::census(12_000, 7);
    println!(
        "census extract: {} rows × {} attributes, {} distinct QI projections, k = {k}",
        rel.n_rows(),
        rel.schema().arity(),
        rel.distinct_qi_projections()
    );

    // Class 1 — minimum frequency: keep at least 40% of each frequent
    // value (coverage-style diversity, lower bounds only).
    let min_freq = generators::min_frequency(&rel, 8, 0.4, 5 * k);
    evaluate(&rel, "minimum-frequency constraints", &min_freq, k);

    // Class 2 — average representation: push every selected value
    // toward its attribute's mean frequency (binding upper bounds for
    // over-represented values).
    let average = generators::average(&rel, 8, 0.9, 5 * k);
    evaluate(&rel, "average constraints", &average, k);

    // Class 3 — proportional representation (the paper's choice):
    // a ±75% window around each value's original frequency.
    let proportional = generators::proportional(&rel, 8, 0.75, 5 * k);
    evaluate(&rel, "proportional constraints", &proportional, k);
}
