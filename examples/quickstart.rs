//! Quickstart: the paper's running example, end to end.
//!
//! Reproduces Tables 1–3 of the paper: the ten-patient medical
//! relation, what plain 3-anonymization loses, and the diverse
//! 2-anonymous instance DIVA produces for
//! Σ = {σ1 = (ETH[Asian], 2, 5), σ2 = (ETH[African], 1, 3),
//!      σ3 = (CTY[Vancouver], 2, 4)}.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use diva_anonymize::{Anonymizer, KMember};
use diva_constraints::{Constraint, ConstraintSet};
use diva_core::{Diva, DivaConfig, Strategy};
use diva_relation::fixtures::paper_table1;
use diva_relation::{is_k_anonymous, Relation};

fn print_relation(title: &str, rel: &Relation) {
    println!("--- {title} ---");
    let schema = rel.schema();
    let names: Vec<&str> = schema.attributes().iter().map(|a| a.name()).collect();
    println!("{}", names.join("\t"));
    for row in 0..rel.n_rows() {
        let cells: Vec<String> =
            (0..schema.arity()).map(|c| rel.value(row, c).to_string()).collect();
        println!("{}", cells.join("\t"));
    }
    println!();
}

fn main() {
    // Table 1: the original medical records.
    let r = paper_table1();
    print_relation("Table 1 — original relation R", &r);

    // The paper's diversity constraints (Example 3.1).
    let sigma = vec![
        Constraint::single("ETH", "Asian", 2, 5),
        Constraint::single("ETH", "African", 1, 3),
        Constraint::single("CTY", "Vancouver", 2, 4),
    ];
    println!("Diversity constraints Σ:");
    for c in &sigma {
        println!("  {c}");
    }
    println!();

    // Plain k-anonymization (k = 3), the paper's Table 2: diversity is
    // not considered, so minority values can vanish under ★s.
    let plain = KMember::exact(1).anonymize(&r, 3);
    print_relation("Plain 3-anonymous instance (k-member, no Σ)", &plain.relation);
    let set = ConstraintSet::bind(&sigma, &plain.relation).expect("constraints bind");
    println!(
        "plain instance satisfies Σ: {}  (★s: {})\n",
        set.satisfied_by(&plain.relation),
        plain.relation.star_count()
    );

    // DIVA (k = 2), the paper's Table 3: diverse AND anonymous.
    let diva = Diva::new(DivaConfig::with_k(2).strategy(Strategy::MinChoice));
    let out = diva.run(&r, &sigma).expect("the running example is satisfiable");
    print_relation("DIVA output (k = 2) — compare the paper's Table 3", &out.relation);
    let set = ConstraintSet::bind(&sigma, &out.relation).expect("constraints bind");
    println!("2-anonymous: {}", is_k_anonymous(&out.relation, 2));
    println!("satisfies Σ: {}", set.satisfied_by(&out.relation));
    println!("★s: {} (paper's Table 3 uses 26)", out.relation.star_count());
    println!(
        "diverse clustering covered {} tuples; search tried {} assignments with {} backtracks",
        out.stats.sigma_rows, out.stats.coloring.assignments_tried, out.stats.coloring.backtracks
    );
}
