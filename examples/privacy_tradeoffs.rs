//! Privacy-mechanism trade-offs on one workload: DIVA suppression vs
//! Samarati full-domain generalization vs ε-differentially-private
//! noisy counts.
//!
//! The paper's future work (§6) asks how diversity constraints would
//! combine with randomization/DP. This example quantifies the starting
//! point: a fixed workload of demographic counting queries is answered
//! under the three publication regimes, reporting relative error and
//! which diversity constraints survive each regime.
//!
//! ```text
//! cargo run --release --example privacy_tradeoffs
//! ```

use std::collections::HashMap;

use diva_anonymize::Samarati;
use diva_constraints::ConstraintSet;
use diva_core::{Diva, DivaConfig};
use diva_metrics::{evaluate_utility, LaplaceMechanism, QueryWorkload};
use diva_relation::Hierarchy;

fn main() {
    let k = 10;
    let rel = diva_datagen::medical(5_000, 23);
    let sigma = diva_constraints::generators::proportional(&rel, 3, 0.5, 10 * k);
    let workload = QueryWorkload::random(&rel, 300, 11);
    println!(
        "{} records, k = {k}, {} diversity constraints, {} counting queries\n",
        rel.n_rows(),
        sigma.len(),
        workload.queries.len()
    );

    // --- Regime 1: DIVA (diversity-preserving suppression). ---
    let out = Diva::new(DivaConfig::with_k(k)).run(&rel, &sigma).expect("satisfiable");
    let u = evaluate_utility(&rel, &out.relation, &workload);
    let sat = ConstraintSet::bind(&sigma, &out.relation)
        .map(|s| s.satisfied_by(&out.relation))
        .unwrap_or(false);
    println!("DIVA (suppression):");
    println!(
        "  mean rel. error {:.3}   median {:.3}   exact {:.0}%",
        u.mean_relative_error,
        u.median_relative_error,
        u.exact_fraction * 100.0
    );
    println!("  diversity constraints satisfied: {sat}");

    // --- Regime 2: Samarati full-domain generalization. ---
    let mut h = HashMap::new();
    h.insert("AGE".to_string(), Hierarchy::interval(0, 89, &[10, 30]));
    h.insert(
        "PRV".to_string(),
        Hierarchy::from_chains(&[
            vec!["BC", "West"],
            vec!["AB", "West"],
            vec!["SK", "West"],
            vec!["MB", "West"],
            vec!["ON", "East"],
            vec!["QC", "East"],
            vec!["NS", "East"],
            vec!["NB", "East"],
        ]),
    );
    let fd =
        Samarati::new(h).max_sup(rel.n_rows() / 100).anonymize(&rel, k).expect("lattice top works");
    let u = evaluate_utility(&rel, &fd.relation, &workload);
    let sat = ConstraintSet::bind(&sigma, &fd.relation)
        .map(|s| s.satisfied_by(&fd.relation))
        .unwrap_or(false);
    println!(
        "\nSamarati full-domain generalization (levels {:?}, {} outliers):",
        fd.levels,
        fd.suppressed_rows.len()
    );
    println!(
        "  mean rel. error {:.3}   median {:.3}   exact {:.0}%",
        u.mean_relative_error,
        u.median_relative_error,
        u.exact_fraction * 100.0
    );
    println!("  diversity constraints satisfied: {sat}  (full-domain recoding ignores Σ)");

    // --- Regime 3: ε-DP noisy counts (no instance published). ---
    for epsilon in [0.1, 1.0] {
        let (u, budget) = LaplaceMechanism::new(epsilon, 31).evaluate(&rel, &workload);
        println!("\nLaplace mechanism (ε = {epsilon} per query, total budget {budget:.0}):");
        println!(
            "  mean rel. error {:.3}   median {:.3}   exact {:.0}%",
            u.mean_relative_error,
            u.median_relative_error,
            u.exact_fraction * 100.0
        );
        println!("  diversity constraints: not applicable (no instance is published)");
    }

    println!(
        "\nTakeaway: DIVA is the only regime that publishes a full instance\n\
         with diversity guarantees; DP trades instance-level access for\n\
         calibrated noise, and full-domain generalization preserves broad\n\
         statistics but cannot honour per-value retention bounds."
    );
}
